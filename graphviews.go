// Package graphviews answers graph pattern queries using views, as
// described in:
//
//	Wenfei Fan, Xin Wang, Yinghui Wu.
//	"Answering Graph Pattern Queries Using Views." ICDE 2014.
//
// Pattern matching is defined by graph simulation and bounded simulation.
// Given a set of view definitions V (patterns) materialized over a data
// graph G, a query Qs can be answered from the cached extensions V(G)
// alone — never touching G — exactly when Qs is contained in V (pattern
// containment, Theorem 1). This package exposes:
//
//   - data graphs (Graph) and pattern queries (Pattern, parsed from a
//     small DSL or built programmatically), with per-node predicates and
//     per-edge distance bounds;
//   - matching engines: Match (simulation / bounded simulation
//     dispatch), MatchDual and MatchStrong (the Section VIII extensions);
//   - views: Define / NewViewSet / Materialize, plus incrementally
//     maintained extensions (NewMaintained);
//   - containment analysis: Contains, MinimalViews (quadratic),
//     MinimumViews (greedy O(log|Ep|)-approximation of the NP-complete
//     minimum problem), and QueryContained (classical containment);
//   - view-based evaluation: Answer and MatchJoin/BMatchJoin;
//   - a concurrent pipeline: NewEngine with WithParallelism /
//     WithContext / WithShards runs materialization, containment and
//     MatchJoin seeding over a worker pool with cancellation — and,
//     when sharding is configured, over hash-partitioned CSR shards
//     (Shard) — producing results identical to the sequential entry
//     points.
//
// The quickstart in examples/quickstart walks through the paper's
// Fig. 1 end to end.
package graphviews

import (
	"io"

	"graphviews/internal/core"
	"graphviews/internal/graph"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// Re-exported substrate types. The aliases expose the full method sets of
// the internal implementations.
type (
	// Graph is a directed data graph with labeled nodes and optional
	// integer/categorical attributes.
	Graph = graph.Graph
	// GraphReader is the read-only graph abstraction every evaluation
	// entry point accepts; *Graph, *Frozen and *Sharded all satisfy it.
	GraphReader = graph.Reader
	// Frozen is an immutable CSR snapshot of a data graph (see Freeze):
	// flat edge arrays, a prebuilt lock-free label index and frozen
	// attribute columns, safe for unsynchronized concurrent reads.
	Frozen = graph.Frozen
	// Sharded is a hash-partitioned immutable backend of k CSR shards
	// (see Shard): per-shard label partitions with merge-on-read global
	// NodesWithLabel, and per-shard boundary arrays of cross-shard edges.
	Sharded = graph.Sharded
	// NodeID identifies a node of a Graph.
	NodeID = graph.NodeID
	// LabelID is an interned node label.
	LabelID = graph.LabelID
	// Pattern is a (possibly bounded) graph pattern query.
	Pattern = pattern.Pattern
	// PatternNode is a pattern node: name, label, predicates.
	PatternNode = pattern.Node
	// PatternEdge is a directed pattern edge with a bound.
	PatternEdge = pattern.Edge
	// Bound is an edge bound: a positive hop count or Unbounded.
	Bound = pattern.Bound
	// Predicate is a comparison on a node attribute.
	Predicate = pattern.Predicate
	// Op is a predicate comparison operator.
	Op = pattern.Op
	// Result is a query result {(e, Se)}: one match set per pattern edge.
	Result = simulation.Result
	// Pair is a single (v, v') edge match.
	Pair = simulation.Pair
	// ViewDefinition is a named view: a pattern to materialize.
	ViewDefinition = view.Definition
	// ViewSet is an ordered set of view definitions.
	ViewSet = view.Set
	// Extensions is a materialized family V(G).
	Extensions = view.Extensions
	// DistIndex is the distance index I(V) for bounded answering.
	DistIndex = view.DistIndex
	// Maintained couples a graph with incrementally maintained extensions.
	Maintained = view.Maintained
	// EdgeUpdate is one element of a Maintained.ApplyBatch update stream.
	EdgeUpdate = view.EdgeUpdate
	// MaintStats counts what incremental maintenance did: recomputes,
	// delta propagations, fast-path skips, coalesced-away updates,
	// affected candidate pairs, batches and propagation time.
	MaintStats = view.MaintStats
	// Feed buffers and coalesces edge updates ahead of a Maintained so
	// propagation cost is paid per flush rather than per write.
	Feed = view.Feed
	// Lambda maps query edges to the view edges whose extensions seed them.
	Lambda = core.Lambda
	// ViewEdgeRef addresses one edge of one view.
	ViewEdgeRef = core.ViewEdgeRef
	// Strategy selects which views feed MatchJoin.
	Strategy = core.Strategy
	// Stats reports MatchJoin work counters.
	Stats = core.Stats
)

// Unbounded is the * edge bound: any nonempty path length.
const Unbounded = pattern.Unbounded

// Predicate operators.
const (
	OpEq = pattern.OpEq
	OpNe = pattern.OpNe
	OpLt = pattern.OpLt
	OpLe = pattern.OpLe
	OpGt = pattern.OpGt
	OpGe = pattern.OpGe
)

// View-selection strategies for Answer.
const (
	UseAll     = core.UseAll
	UseMinimal = core.UseMinimal
	UseMinimum = core.UseMinimum
)

// ErrNotContained is returned by Answer when the query is not contained
// in the views and therefore cannot be answered from them (Theorem 1).
var ErrNotContained = core.ErrNotContained

// NewGraph returns an empty data graph.
func NewGraph() *Graph { return graph.New() }

// NewGraphWithCapacity returns an empty graph with room for n nodes.
func NewGraphWithCapacity(n int) *Graph { return graph.NewWithCapacity(n) }

// Freeze builds an immutable CSR snapshot of g in O(|V|+|E|): evaluation
// over a Frozen shares no mutable state with the source graph, drops the
// label-index mutex from the hottest read path and improves cache
// locality for the simulation fixpoints. Freezing a *Frozen is a no-op.
// Thaw() on the snapshot round-trips back to a mutable *Graph.
func Freeze(g GraphReader) *Frozen { return graph.Freeze(g) }

// Shard splits any graph backend into k hash partitions in O(|V|+|E|):
// shard s owns the nodes v with v mod k == s, holding their full CSR
// adjacency, a shard-local label partition, frozen attribute columns and
// the boundary array of its cross-shard out-edges. The result satisfies
// GraphReader, so every evaluation entry point runs on it unchanged —
// over a Sharded the engines' candidate seeding fans out per shard —
// and results are byte-identical to the other backends at any k.
// Unshard() flattens back to a *Frozen. Sharding a *Sharded at the same
// k is a no-op.
func Shard(g GraphReader, k int) *Sharded { return graph.Shard(g, k) }

// ReadGraph parses a graph in the text format written by WriteGraph.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph serializes g.
func WriteGraph(w io.Writer, g GraphReader) error { return graph.Write(w, g) }

// NewPattern returns an empty pattern with the given name.
func NewPattern(name string) *Pattern { return pattern.New(name) }

// ParsePattern parses one pattern in the DSL, e.g.
//
//	pattern Q {
//	  node v: video [category="Music", rate>=40]
//	  node w: video
//	  edge v -> w <=2
//	}
func ParsePattern(src string) (*Pattern, error) { return pattern.Parse(src) }

// ParsePatterns parses any number of patterns from one source.
func ParsePatterns(src string) ([]*Pattern, error) { return pattern.ParseAll(src) }

// IntPred builds a numeric predicate.
func IntPred(attr string, op Op, val int64) Predicate { return pattern.IntPred(attr, op, val) }

// StrPred builds a categorical predicate.
func StrPred(attr string, op Op, val string) Predicate { return pattern.StrPred(attr, op, val) }

// Match evaluates q over g directly: graph simulation for plain patterns
// (all bounds 1), bounded simulation otherwise. This is the paper's
// baseline Match/BMatch. g may be the mutable *Graph or a Freeze
// snapshot; results are identical across backends.
func Match(g GraphReader, q *Pattern) *Result { return simulation.Simulate(g, q) }

// MatchDual evaluates q under dual simulation (forward and backward
// conditions; Section VIII extension).
func MatchDual(g GraphReader, q *Pattern) *Result { return simulation.SimulateDual(g, q) }

// MatchStrong evaluates q under strong simulation (dual simulation within
// locality balls; Section VIII extension).
func MatchStrong(g GraphReader, q *Pattern) *Result { return simulation.SimulateStrong(g, q) }

// Define names a pattern as a view definition.
func Define(name string, p *Pattern) *ViewDefinition { return view.Define(name, p) }

// NewViewSet builds a view set V = {V1, ..., Vn}.
func NewViewSet(defs ...*ViewDefinition) *ViewSet { return view.NewSet(defs...) }

// Materialize evaluates every view over g, producing the extensions V(G).
func Materialize(g GraphReader, vs *ViewSet) *Extensions { return view.Materialize(g, vs) }

// BuildDistIndex builds the distance index I(V) over materialized
// extensions (Section VI-A).
func BuildDistIndex(x *Extensions) *DistIndex { return view.BuildDistIndex(x) }

// NewMaintained materializes vs over g and keeps the extensions in sync
// under InsertEdge/DeleteEdge.
func NewMaintained(g *Graph, vs *ViewSet) *Maintained { return view.NewMaintained(g, vs) }

// NewFeed returns an empty change feed in front of m: Submit coalesces
// incoming updates, Flush applies the net batch in one propagation pass.
func NewFeed(m *Maintained) *Feed { return view.NewFeed(m) }

// Contains decides pattern containment Qs ⊑ V (Theorem 3 for plain
// patterns, Theorem 10 for bounded ones) and returns the edge mapping λ
// when it holds.
func Contains(q *Pattern, vs *ViewSet) (*Lambda, bool, error) { return core.Contain(q, vs) }

// MinimalViews finds a minimal subset of vs containing q (Theorem 5),
// returning the chosen view indices and λ restricted to them.
func MinimalViews(q *Pattern, vs *ViewSet) ([]int, *Lambda, bool, error) {
	return core.Minimal(q, vs)
}

// MinimumViews approximates the minimum containing subset within
// O(log |Ep|) (Theorem 6).
func MinimumViews(q *Pattern, vs *ViewSet) ([]int, *Lambda, bool, error) {
	return core.Minimum(q, vs)
}

// QueryContained decides classical query containment q1 ⊑ q2
// (Corollary 4: quadratic time).
func QueryContained(q1, q2 *Pattern) (bool, error) { return core.QueryContained(q1, q2) }

// MatchJoin evaluates q from extensions only, guided by λ (Fig. 2 of the
// paper; covers BMatchJoin for bounded patterns).
func MatchJoin(q *Pattern, x *Extensions, l *Lambda) (*Result, Stats) {
	return core.MatchJoin(q, x, l)
}

// Answer computes Q(G) from materialized extensions only, selecting views
// per the strategy. It returns ErrNotContained when q ⋢ V.
func Answer(q *Pattern, x *Extensions, s Strategy) (*Result, []int, error) {
	return core.Answer(q, x, s)
}

// MinimizePattern merges mutually simulating pattern nodes, preserving
// match sets (query minimization, Section IV).
func MinimizePattern(q *Pattern) (*Pattern, []int) {
	m := pattern.Minimize(q)
	return m.P, m.NodeMap
}

// PartialAnswer is a maximally contained partial answer for a query that
// is not (necessarily) contained in the views.
type PartialAnswer = core.PartialAnswer

// AnswerPartial answers q as far as the views allow (§VIII future work:
// maximally contained rewriting): covered edges get sound upper-bound
// match sets; Exact is true when q ⊑ V and the result is exact.
func AnswerPartial(q *Pattern, x *Extensions) (*PartialAnswer, error) {
	return core.AnswerPartial(q, x)
}

// SelectViews picks a subset of candidate views sufficient to answer the
// whole query workload (§VIII future work: what to cache), by greedy set
// cover over all queries' edges. ok is false if even the full pool cannot
// cover some query.
func SelectViews(workload []*Pattern, candidates *ViewSet) (chosen []int, ok bool, err error) {
	return core.SelectViews(workload, candidates)
}

// MaterializeDual materializes views under dual simulation; answer with
// DualMatchJoin via DualContains (§VIII extension).
func MaterializeDual(g GraphReader, vs *ViewSet) *Extensions { return view.MaterializeDual(g, vs) }

// DualContains decides containment under dual simulation semantics
// (plain patterns only).
func DualContains(q *Pattern, vs *ViewSet) (*Lambda, bool, error) { return core.DualContain(q, vs) }

// DualMatchJoin answers q from dual-simulation extensions.
func DualMatchJoin(q *Pattern, x *Extensions, l *Lambda) (*Result, Stats) {
	return core.DualMatchJoin(q, x, l)
}
