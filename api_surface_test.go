package graphviews_test

import (
	"math/rand"
	"testing"

	gv "graphviews"
)

// TestFacadeSurface touches the remaining public entry points so the
// facade stays wired to the internals it re-exports.
func TestFacadeSurface(t *testing.T) {
	g := gv.NewGraphWithCapacity(8)
	if g.NumNodes() != 0 {
		t.Fatalf("capacity constructor should start empty")
	}
	a := g.AddNode("A")
	b := g.AddNode("B")
	g.AddEdge(a, b)

	// Predicate constructors.
	p := gv.NewPattern("q")
	pa := p.AddNode("a", "A", gv.IntPred("x", gv.OpGe, 1))
	pb := p.AddNode("b", "B", gv.StrPred("c", gv.OpNe, "z"))
	p.AddBoundedEdge(pa, pb, gv.Unbounded)
	if p.IsPlain() {
		t.Fatalf("unbounded edge should make the pattern non-plain")
	}

	// ParsePatterns (plural).
	ps, err := gv.ParsePatterns("pattern a {\n node x: X\n}\npattern b {\n node y: Y\n}")
	if err != nil || len(ps) != 2 {
		t.Fatalf("ParsePatterns: %v %d", err, len(ps))
	}

	// Minimize on a trivially irreducible pattern.
	q := gv.NewPattern("m")
	q.AddEdge(q.AddNode("a", "A"), q.AddNode("b", "B"))
	minP, nm := gv.MinimizePattern(q)
	if len(minP.Nodes) != 2 || len(nm) != 2 {
		t.Fatalf("MinimizePattern changed an irreducible pattern")
	}

	// Strong simulation through the facade.
	res := gv.MatchStrong(g, q)
	if !res.Matched {
		t.Fatalf("strong simulation should match the single edge")
	}

	// QueryContained through the facade, negative direction.
	q2 := gv.NewPattern("m2")
	q2.AddEdge(q2.AddNode("a", "A"), q2.AddNode("c", "C"))
	if ok, _ := gv.QueryContained(q, q2); ok {
		t.Fatalf("A->B should not be contained in A->C")
	}

	// MatchJoin invoked directly with a λ from Contains.
	v := gv.NewViewSet(gv.Define("v", q.Clone()))
	l, ok, err := gv.Contains(q, v)
	if err != nil || !ok {
		t.Fatalf("Contains: %v %v", ok, err)
	}
	x := gv.Materialize(g, v)
	mj, stats := gv.MatchJoin(q, x, l)
	if !mj.Matched || stats.InitialPairs != 1 {
		t.Fatalf("MatchJoin via facade: matched=%v pairs=%d", mj.Matched, stats.InitialPairs)
	}

	// Dataset generators exposed by the facade.
	if g := gv.GenerateDensified(100, 1.1, 5, 1); g.NumNodes() != 100 {
		t.Fatalf("GenerateDensified wrong size")
	}
	if g := gv.GenerateCitationLike(100, 200, 1); g.NumNodes() != 100 {
		t.Fatalf("GenerateCitationLike wrong size")
	}
	if g := gv.GenerateAmazonLike(100, 200, 1); g.NumNodes() != 100 {
		t.Fatalf("GenerateAmazonLike wrong size")
	}
	if vs := gv.CitationViews(); vs.Card() != 12 {
		t.Fatalf("CitationViews card = %d", vs.Card())
	}
	if vs := gv.AmazonViews(); vs.Card() != 12 {
		t.Fatalf("AmazonViews card = %d", vs.Card())
	}

	// Necklace workloads (the SCC-parallel fixpoint stress generator).
	rng := rand.New(rand.NewSource(1))
	nq, nvs := gv.NecklaceQuery(rng, 3, 1)
	if nq.IsDAG() {
		t.Fatalf("necklace query must contain cycles")
	}
	if _, ok, err := gv.Contains(nq, nvs); err != nil || !ok {
		t.Fatalf("necklace not contained in its views: %v %v", ok, err)
	}
	if ng := gv.NecklaceGraph(rng, nq, 50, 100); ng.NumNodes() != 50 {
		t.Fatalf("NecklaceGraph wrong size")
	}
}
