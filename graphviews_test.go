package graphviews_test

import (
	"bytes"
	"math/rand"
	"testing"

	gv "graphviews"
)

// TestPublicAPIQuickstart exercises the full public surface on the
// paper's Fig. 1 instance.
func TestPublicAPIQuickstart(t *testing.T) {
	g := gv.NewGraph()
	people := []struct {
		name, job string
	}{
		{"Bob", "PM"}, {"Walt", "PM"}, {"Mat", "DBA"}, {"Fred", "DBA"},
		{"Mary", "DBA"}, {"Dan", "PRG"}, {"Pat", "PRG"}, {"Bill", "PRG"},
	}
	ids := map[string]gv.NodeID{}
	for _, p := range people {
		ids[p.name] = g.AddNode(p.job)
	}
	for _, e := range [][2]string{
		{"Bob", "Mat"}, {"Walt", "Mat"}, {"Bob", "Dan"}, {"Walt", "Bill"},
		{"Fred", "Pat"}, {"Mat", "Pat"}, {"Mary", "Bill"},
		{"Dan", "Fred"}, {"Pat", "Mary"}, {"Pat", "Mat"}, {"Bill", "Mat"},
	} {
		g.AddEdge(ids[e[0]], ids[e[1]])
	}

	q, err := gv.ParsePattern(`
pattern Qs {
  node pm: PM
  node dba1: DBA
  node prg1: PRG
  node dba2: DBA
  node prg2: PRG
  edge pm -> dba1
  edge pm -> prg2
  edge dba1 -> prg1
  edge prg1 -> dba2
  edge dba2 -> prg2
  edge prg2 -> dba1
}`)
	if err != nil {
		t.Fatalf("ParsePattern: %v", err)
	}

	v1, _ := gv.ParsePattern("pattern V1 {\n node pm: PM\n node dba: DBA\n node prg: PRG\n edge pm -> dba\n edge pm -> prg\n}")
	v2, _ := gv.ParsePattern("pattern V2 {\n node dba: DBA\n node prg: PRG\n edge dba -> prg\n edge prg -> dba\n}")
	vs := gv.NewViewSet(gv.Define("V1", v1), gv.Define("V2", v2))

	if _, ok, err := gv.Contains(q, vs); err != nil || !ok {
		t.Fatalf("Contains = %v, %v; want true", ok, err)
	}

	x := gv.Materialize(g, vs)
	ans, used, err := gv.Answer(q, x, gv.UseMinimal)
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if len(used) != 2 {
		t.Fatalf("both views are needed, used = %v", used)
	}
	direct := gv.Match(g, q)
	if !ans.Equal(direct) {
		t.Fatalf("view answer != direct:\n%v\nvs\n%v", ans, direct)
	}
	if !ans.Matched || ans.Size() != 18 {
		t.Fatalf("|Qs(G)| = %d, want 18", ans.Size())
	}
}

func TestPublicAPIGraphIO(t *testing.T) {
	g := gv.NewGraph()
	a := g.AddNode("A")
	b := g.AddNode("B")
	g.AddEdge(a, b)
	g.SetAttr(a, "x", 5)
	var buf bytes.Buffer
	if err := gv.WriteGraph(&buf, g); err != nil {
		t.Fatalf("WriteGraph: %v", err)
	}
	g2, err := gv.ReadGraph(&buf)
	if err != nil {
		t.Fatalf("ReadGraph: %v", err)
	}
	if g2.NumNodes() != 2 || !g2.HasEdge(0, 1) {
		t.Fatalf("round trip lost data")
	}
}

func TestPublicAPIBounded(t *testing.T) {
	g := gv.GenerateYouTubeLike(500, 1500, 3)
	vs := gv.BoundedViews(gv.YouTubeViews(), 2)
	x := gv.Materialize(g, vs)
	rng := rand.New(rand.NewSource(4))
	q := gv.GlueQuery(rng, vs, 4, 5)
	ans, _, err := gv.Answer(q, x, gv.UseMinimum)
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if !ans.Equal(gv.Match(g, q)) {
		t.Fatalf("bounded view answer != direct")
	}
	idx := gv.BuildDistIndex(x)
	if idx.Len() == 0 && x.TotalEdges() > 0 {
		t.Fatalf("distance index empty despite extensions")
	}
}

func TestPublicAPIMaintained(t *testing.T) {
	g := gv.GenerateAmazonLike(300, 900, 5)
	vs := gv.AmazonViews()
	m := gv.NewMaintained(g, vs)
	before := m.X.TotalEdges()
	// Insert a co-purchase edge between two books; views must refresh.
	books := g.NodesWithLabelName("Book")
	inserted := false
	for i := 0; i+1 < len(books) && !inserted; i++ {
		inserted = m.InsertEdge(books[i], books[i+1])
	}
	if !inserted {
		t.Skip("no insertable book pair")
	}
	after := m.X.TotalEdges()
	if after < before {
		t.Fatalf("insertion shrank extensions: %d -> %d", before, after)
	}
}

func TestPublicAPIDualStrong(t *testing.T) {
	g := gv.NewGraph()
	a := g.AddNode("A")
	b := g.AddNode("B")
	g.AddNode("B") // b2: no in-edge
	g.AddEdge(a, b)
	q := gv.NewPattern("q")
	qa := q.AddNode("a", "A")
	qb := q.AddNode("b", "B")
	q.AddEdge(qa, qb)
	d := gv.MatchDual(g, q)
	if !d.Matched || len(d.NodeMatches(qb)) != 1 {
		t.Fatalf("dual should keep only the linked B: %v", d.Sim)
	}
	s := gv.MatchStrong(g, q)
	if !s.Matched {
		t.Fatalf("strong should match")
	}
}

func TestPublicAPIMinimize(t *testing.T) {
	q := gv.NewPattern("q")
	a := q.AddNode("a", "A")
	b1 := q.AddNode("b1", "B")
	b2 := q.AddNode("b2", "B")
	q.AddEdge(a, b1)
	q.AddEdge(a, b2)
	m, nodeMap := gv.MinimizePattern(q)
	if len(m.Nodes) != 2 || nodeMap[b1] != nodeMap[b2] {
		t.Fatalf("minimize failed: %v %v", m, nodeMap)
	}
}

func TestPublicAPIQueryContained(t *testing.T) {
	q := gv.NewPattern("q")
	q.AddEdge(q.AddNode("a", "A"), q.AddNode("b", "B"))
	ok, err := gv.QueryContained(q, q.Clone())
	if err != nil || !ok {
		t.Fatalf("self containment: %v %v", ok, err)
	}
}

func TestPublicAPIErrNotContained(t *testing.T) {
	g := gv.GenerateUniform(50, 100, 5, 9)
	vs := gv.SyntheticViews(5, 10)
	x := gv.Materialize(g, vs)
	q := gv.NewPattern("q")
	q.AddEdge(q.AddNode("a", "L0"), q.AddNode("z", "NOPE"))
	if _, _, err := gv.Answer(q, x, gv.UseAll); err != gv.ErrNotContained {
		t.Fatalf("want ErrNotContained, got %v", err)
	}
}
