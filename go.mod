module graphviews

go 1.22
