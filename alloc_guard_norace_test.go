//go:build !race

package graphviews_test

const raceEnabled = false
