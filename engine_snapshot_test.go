package graphviews

import (
	"context"
	"math/rand"
	"testing"
)

// TestEngineSnapshot covers the serving accessor: backend selection per
// configuration, pass-through of pre-built snapshots, and the
// cancelled-context guard.
func TestEngineSnapshot(t *testing.T) {
	g := GenerateUniform(200, 800, 4, 7)

	t.Run("freezes mutable graph", func(t *testing.T) {
		snap, err := NewEngine().Snapshot(g)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := snap.(*Frozen); !ok {
			t.Fatalf("snapshot = %T, want *Frozen", snap)
		}
		if snap.NumNodes() != g.NumNodes() || snap.NumEdges() != g.NumEdges() {
			t.Fatal("snapshot shape differs from source graph")
		}
	})

	t.Run("shards when configured", func(t *testing.T) {
		snap, err := NewEngine(WithShards(3)).Snapshot(g)
		if err != nil {
			t.Fatal(err)
		}
		sh, ok := snap.(*Sharded)
		if !ok {
			t.Fatalf("snapshot = %T, want *Sharded", snap)
		}
		if sh.NumShards() != 3 {
			t.Fatalf("NumShards = %d, want 3", sh.NumShards())
		}
	})

	t.Run("passes through pre-built backends", func(t *testing.T) {
		f := Freeze(g)
		snap, err := NewEngine().Snapshot(f)
		if err != nil {
			t.Fatal(err)
		}
		if snap != GraphReader(f) {
			t.Fatal("pre-built *Frozen was rebuilt")
		}
		sh := Shard(g, 2)
		snap, err = NewEngine(WithShards(5)).Snapshot(sh)
		if err != nil {
			t.Fatal(err)
		}
		if snap != GraphReader(sh) {
			t.Fatal("pre-built *Sharded was rebuilt or re-partitioned")
		}
	})

	t.Run("cancelled context fails fast", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := NewEngine(WithContext(ctx)).Snapshot(g); err == nil {
			t.Fatal("Snapshot succeeded on a cancelled engine context")
		}
	})
}

// TestEngineWithRequest covers the request-scoped handle: the derived
// engine observes its own context while the parent keeps its own, and
// both share one warmed scratch configuration.
func TestEngineWithRequest(t *testing.T) {
	g := GenerateYouTubeLike(500, 2000, 11)
	vs := YouTubeViews()
	eng := NewEngine(WithParallelism(2))
	exts, err := eng.Materialize(g, vs)
	if err != nil {
		t.Fatal(err)
	}
	q := GlueQuery(rand.New(rand.NewSource(11)), vs, 2, 2)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := eng.WithRequest(ctx).Answer(q, exts, UseMinimal); err == nil {
		t.Fatal("request-scoped Answer ignored its cancelled context")
	}
	// The parent engine is untouched by the derived handle.
	if _, _, _, err := eng.Answer(q, exts, UseMinimal); err != nil {
		t.Fatalf("parent engine affected by WithRequest: %v", err)
	}
	// A nil ctx means Background, not a nil-pointer panic.
	if _, _, _, err := eng.WithRequest(nil).Answer(q, exts, UseMinimal); err != nil {
		t.Fatalf("WithRequest(nil): %v", err)
	}
}
