// Command benchjson converts `go test -bench -benchmem` output into the
// repo's benchmark-trajectory JSON (BENCH_*.json): a map from benchmark
// name (GOMAXPROCS suffix stripped) to {ns_per_op, b_per_op,
// allocs_per_op, iterations}, plus a _meta block recording the
// goos/goarch/cpu lines. Feed it one or more concatenated bench runs on
// stdin:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_PR4.json
//
// Benchmarks appearing several times (e.g. -count>1) keep the run with
// the lowest ns/op, making the trajectory robust to scheduler noise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// entry is one benchmark's recorded metrics.
type entry struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkAnswerFrozen/backend=frozen/workers=1-4  26  15022205 ns/op  4760385 B/op  7458 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "", "output JSON file (default stdout)")
	flag.Parse()

	meta := map[string]string{}
	benches := map[string]entry{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "cpu", "pkg"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				meta[key] = v
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		e := entry{Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			e.BPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			e.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if old, ok := benches[name]; !ok || e.NsPerOp < old.NsPerOp {
			benches[name] = e
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	doc := struct {
		Meta       map[string]string `json:"_meta"`
		Benchmarks map[string]entry  `json:"benchmarks"`
	}{Meta: meta, Benchmarks: benches}

	buf, err := marshalSorted(doc.Meta, doc.Benchmarks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(benches), *out)
}

// marshalSorted emits deterministic JSON: keys sorted, one benchmark per
// line, so BENCH_*.json diffs cleanly across PRs.
func marshalSorted(meta map[string]string, benches map[string]entry) ([]byte, error) {
	var b strings.Builder
	b.WriteString("{\n  \"_meta\": ")
	mb, err := json.Marshal(meta) // encoding/json sorts map keys
	if err != nil {
		return nil, err
	}
	b.Write(mb)
	b.WriteString(",\n  \"benchmarks\": {\n")
	names := make([]string, 0, len(benches))
	for n := range benches {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		eb, err := json.Marshal(benches[n])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "    %q: %s", n, eb)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("  }\n}\n")
	return []byte(b.String()), nil
}
