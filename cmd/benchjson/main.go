// Command benchjson converts `go test -bench -benchmem` output into the
// repo's benchmark-trajectory JSON (BENCH_*.json): a map from benchmark
// name (GOMAXPROCS suffix stripped) to {ns_per_op, b_per_op,
// allocs_per_op, iterations}, plus a _meta block recording the
// goos/goarch/cpu lines. Feed it one or more concatenated bench runs on
// stdin:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_PR4.json
//
// Benchmarks appearing several times (e.g. -count>1) keep the run with
// the lowest ns/op, making the trajectory robust to scheduler noise.
//
// Compare mode diffs two trajectory files and gates on regressions:
//
//	benchjson -diff [-threshold 0.20] BENCH_PR4.json BENCH_PR5.json
//
// prints per-benchmark ns/op and allocs/op deltas for the benchmarks
// present in both files (plus the names only in one, informationally)
// and exits nonzero when any common benchmark regressed by more than
// the threshold on either metric. `make bench-diff BASE=BENCH_PR4.json`
// reruns the suite and feeds it through this mode. `-skip <regexp>`
// exempts matching series from the gate (still printed, marked
// "skipped") — for series recorded informationally, like the durable
// write-path sweeps whose cost moves by design.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// entry is one benchmark's recorded metrics.
type entry struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkAnswerFrozen/backend=frozen/workers=1-4  26  15022205 ns/op  4760385 B/op  7458 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "", "output JSON file (default stdout)")
	diff := flag.Bool("diff", false, "compare two trajectory files: benchjson -diff BASE NEW")
	threshold := flag.Float64("threshold", 0.20, "regression gate for -diff: fail when ns/op or allocs/op grows by more than this fraction")
	skip := flag.String("skip", "", "regexp of benchmark names exempt from the -diff gate (printed, marked skipped, never fail)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two files: BASE NEW")
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *threshold, *skip))
	}

	meta := map[string]string{}
	benches := map[string]entry{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		for _, key := range []string{"goos", "goarch", "cpu", "pkg"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				meta[key] = v
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		e := entry{Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			e.BPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			e.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if old, ok := benches[name]; !ok || e.NsPerOp < old.NsPerOp {
			benches[name] = e
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	doc := struct {
		Meta       map[string]string `json:"_meta"`
		Benchmarks map[string]entry  `json:"benchmarks"`
	}{Meta: meta, Benchmarks: benches}

	buf, err := marshalSorted(doc.Meta, doc.Benchmarks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(benches), *out)
}

// loadTrajectory parses a BENCH_*.json file written by this tool.
func loadTrajectory(path string) (map[string]entry, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Benchmarks map[string]entry `json:"benchmarks"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return doc.Benchmarks, nil
}

// delta returns the fractional change cur/base - 1. A zero base with a
// nonzero cur is an infinite regression — the trajectory's goal is
// driving metrics (especially allocs/op) to zero, and a slide from 0
// back to anything must trip the gate, not sneak past it.
func delta(base, cur float64) float64 {
	if base == 0 {
		if cur > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return cur/base - 1
}

// runDiff compares two trajectory files and returns the process exit
// code: 0 when no common, non-skipped benchmark regressed beyond the
// threshold on ns/op or allocs/op, 1 otherwise.
func runDiff(basePath, newPath string, threshold float64, skip string) int {
	base, err := loadTrajectory(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	cur, err := loadTrajectory(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	var skipRe *regexp.Regexp
	if skip != "" {
		if skipRe, err = regexp.Compile(skip); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: bad -skip pattern: %v\n", err)
			return 2
		}
	}

	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Printf("benchmark diff: %s -> %s (gate: +%.0f%% on ns/op or allocs/op)\n",
		basePath, newPath, threshold*100)
	fmt.Printf("%-72s %14s %14s %8s %10s %8s\n",
		"benchmark", "base ns/op", "new ns/op", "Δns", "allocs", "Δallocs")
	regressed := 0
	var added []string
	for _, n := range names {
		e := cur[n]
		b, ok := base[n]
		if !ok {
			added = append(added, n)
			continue
		}
		dNs := delta(b.NsPerOp, e.NsPerOp)
		dAl := delta(float64(b.AllocsPerOp), float64(e.AllocsPerOp))
		mark := ""
		if dNs > threshold || dAl > threshold {
			if skipRe != nil && skipRe.MatchString(n) {
				mark = "  (skipped)"
			} else {
				mark = "  REGRESSED"
				regressed++
			}
		}
		fmt.Printf("%-72s %14.0f %14.0f %+7.1f%% %4d→%-4d %+7.1f%%%s\n",
			n, b.NsPerOp, e.NsPerOp, dNs*100, b.AllocsPerOp, e.AllocsPerOp, dAl*100, mark)
	}
	for _, n := range added {
		e := cur[n]
		fmt.Printf("%-72s %14s %14.0f %8s %5s%-4d %8s  (new)\n",
			n, "-", e.NsPerOp, "-", "→", e.AllocsPerOp, "-")
	}
	for _, n := range sortedMissing(base, cur) {
		fmt.Printf("%-72s  (only in %s)\n", n, basePath)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed beyond +%.0f%%\n",
			regressed, threshold*100)
		return 1
	}
	fmt.Printf("no regression beyond +%.0f%% across %d common benchmarks\n",
		threshold*100, len(names)-len(added))
	return 0
}

// sortedMissing lists base benchmarks absent from cur, sorted.
func sortedMissing(base, cur map[string]entry) []string {
	var gone []string
	for n := range base {
		if _, ok := cur[n]; !ok {
			gone = append(gone, n)
		}
	}
	sort.Strings(gone)
	return gone
}

// marshalSorted emits deterministic JSON: keys sorted, one benchmark per
// line, so BENCH_*.json diffs cleanly across PRs.
func marshalSorted(meta map[string]string, benches map[string]entry) ([]byte, error) {
	var b strings.Builder
	b.WriteString("{\n  \"_meta\": ")
	mb, err := json.Marshal(meta) // encoding/json sorts map keys
	if err != nil {
		return nil, err
	}
	b.Write(mb)
	b.WriteString(",\n  \"benchmarks\": {\n")
	names := make([]string, 0, len(benches))
	for n := range benches {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		eb, err := json.Marshal(benches[n])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "    %q: %s", n, eb)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("  }\n}\n")
	return []byte(b.String()), nil
}
