// Command gvserve is the snapshot-swap query service: it loads (or
// generates) a data graph, materializes a view set over it, and serves
// view-based query answering over HTTP. All reads run against one
// shared immutable snapshot reached through an atomic pointer; writes
// accumulate in incrementally maintained views and become visible when
// a new snapshot is published (POST /publish, -publish-every, or
// -publish-after).
//
//	gvserve -graph g.graph -views v.patterns -addr :8080
//	gvserve -dataset youtube -nodes 20000 -edges 80000
//
// See OPERATIONS.md for the full runbook: every flag, endpoint, metric
// and failure mode.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	gv "graphviews"
	"graphviews/internal/serve"
	"graphviews/internal/store"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gvserve: "+format+"\n", args...)
	os.Exit(1)
}

// loadWorkload resolves the -graph/-views or -dataset flags into a
// mutable graph and a validated view set.
func loadWorkload(graphPath, viewsPath, dataset string, nodes, edges, labels int, seed int64) (*gv.Graph, *gv.ViewSet) {
	if graphPath != "" {
		f, err := os.Open(graphPath)
		if err != nil {
			fail("%v", err)
		}
		g, err := gv.ReadGraph(f)
		// A Close error on a read path can mask a truncated read (e.g. a
		// network filesystem flushing late); fold it into the load error.
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail("%s: %v", graphPath, err)
		}
		if viewsPath == "" {
			fail("-views is required with -graph")
		}
		src, err := os.ReadFile(viewsPath)
		if err != nil {
			fail("%v", err)
		}
		ps, err := gv.ParsePatterns(string(src))
		if err != nil {
			fail("%s: %v", viewsPath, err)
		}
		defs := make([]*gv.ViewDefinition, len(ps))
		for i, p := range ps {
			defs[i] = gv.Define("", p)
		}
		return g, gv.NewViewSet(defs...)
	}
	switch dataset {
	case "youtube":
		return gv.GenerateYouTubeLike(nodes, edges, seed), gv.YouTubeViews()
	case "amazon":
		return gv.GenerateAmazonLike(nodes, edges, seed), gv.AmazonViews()
	case "citation":
		return gv.GenerateCitationLike(nodes, edges, seed), gv.CitationViews()
	case "uniform":
		return gv.GenerateUniform(nodes, edges, labels, seed), gv.SyntheticViews(labels, seed)
	default:
		fail("need -graph/-views or -dataset youtube|amazon|citation|uniform (got %q)", dataset)
		return nil, nil
	}
}

func main() {
	var (
		graphPath    = flag.String("graph", "", "data graph file (text format; requires -views)")
		viewsPath    = flag.String("views", "", "pattern DSL file with view definitions")
		dataset      = flag.String("dataset", "", "generate a workload instead of loading: youtube|amazon|citation|uniform")
		nodes        = flag.Int("nodes", 20000, "generated graph nodes (-dataset)")
		edges        = flag.Int("edges", 80000, "generated graph edges (-dataset)")
		labels       = flag.Int("labels", 16, "label count for -dataset uniform")
		seed         = flag.Int64("seed", 1, "generator seed (-dataset)")
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "engine worker pool bound (<=0 = GOMAXPROCS)")
		shards       = flag.Int("shards", 1, "snapshot shard count (>=2 fixed, <=0 auto heuristic, 1 unsharded)")
		maxInFlight  = flag.Int("max-inflight", 64, "admission control: max concurrent requests (<=0 unbounded)")
		timeout      = flag.Duration("timeout", 5*time.Second, "per-request deadline (<=0 none)")
		publishEvery = flag.Duration("publish-every", 0, "republish the snapshot on this period when updates are pending (<=0 off)")
		publishAfter = flag.Int("publish-after", 0, "publish once this many updates accumulated (<=0 off)")
		flushAfter   = flag.Int("flush-after", 0, "buffer updates in the coalescing feed until this many deltas accumulated (<=0 = propagate immediately)")
		maintMode    = flag.String("maint", "delta", "view maintenance mode: delta (affected-area propagation) or remat (full recompute baseline)")
		dataDir      = flag.String("data-dir", "", "durable store directory (checkpoint snapshot + write-ahead log); empty = ephemeral, updates lost on restart")
		walSync      = flag.String("wal-sync", "always", "WAL durability for acknowledged updates: always (fsync per record), none, or a group-commit interval like 50ms")
		useMmap      = flag.Bool("mmap", false, "memory-map checkpoint part files at load instead of reading them (zero-copy column adoption; unix only, falls back to reads elsewhere)")
		persistExts  = flag.Bool("persist-exts", true, "persist materialized view extensions in checkpoints so a clean-tail restart skips rematerialization")
		walBacklog   = flag.Int64("wal-backlog", 256<<20, "WAL high-water mark in bytes: past it /healthz degrades to 503 wal_backlog (checkpoints are failing); <=0 unlimited")
		quiet        = flag.Bool("quiet", false, "disable the per-request access log")
	)
	flag.Parse()

	var rematerialize bool
	switch *maintMode {
	case "delta":
	case "remat":
		rematerialize = true
	default:
		fail("unknown -maint %q (want delta or remat)", *maintMode)
	}

	g, vs := loadWorkload(*graphPath, *viewsPath, *dataset, *nodes, *edges, *labels, *seed)

	logger := log.New(os.Stderr, "gvserve: ", log.LstdFlags|log.Lmicroseconds)
	accessLog := logger
	if *quiet {
		accessLog = nil
	}

	// Durable store: open the data directory, and when a checkpoint from
	// a previous run exists, serve that graph instead of the one the
	// workload flags produced (the flags still define the view set, which
	// must stay the same across restarts of one data directory).
	var st *store.Store
	if *dataDir != "" {
		policy, err := store.ParseSyncPolicy(*walSync)
		if err != nil {
			fail("%v", err)
		}
		st, err = store.Open(*dataDir, store.Options{Sync: policy, Mmap: *useMmap})
		if err != nil {
			fail("%v", err)
		}
		defer st.Close()
		if base := st.Base(); base != nil {
			switch b := base.(type) {
			case *gv.Frozen:
				g = b.Thaw()
			case *gv.Sharded:
				g = b.Unshard().Thaw()
			}
			logger.Printf("loaded checkpoint from %s: |V|=%d |E|=%d at write clock %d, %d WAL record(s) to replay",
				*dataDir, g.NumNodes(), g.NumEdges(), st.BaseVersion(), len(st.Tail()))
		} else {
			logger.Printf("fresh data directory %s (wal-sync %s)", *dataDir, policy)
		}
	}
	logger.Printf("materializing %d views over |V|=%d |E|=%d", vs.Card(), g.NumNodes(), g.NumEdges())
	start := time.Now()
	srv, err := serve.NewServer(g, vs, serve.Config{
		Workers:           *workers,
		Shards:            *shards,
		MaxInFlight:       *maxInFlight,
		RequestTimeout:    *timeout,
		PublishEvery:      *publishEvery,
		PublishAfter:      *publishAfter,
		FlushAfter:        *flushAfter,
		Rematerialize:     rematerialize,
		Store:             st,
		PersistExtensions: *persistExts,
		WALBacklogBytes:   *walBacklog,
		Logger:            accessLog,
	})
	if err != nil {
		fail("%v", err)
	}
	defer srv.Close()
	snap := srv.Current()
	logger.Printf("epoch %d ready in %s: %d views, %d cached pairs (%.2f%% of |G|)",
		snap.Epoch, time.Since(start).Round(time.Millisecond),
		snap.Exts.Set.Card(), snap.Exts.TotalEdges(), 100*snap.Exts.FractionOf(snap.Graph))

	// Crash recovery: replay the WAL tail into the maintained views while
	// /healthz reports not-ready and queries shed with 503 + Retry-After.
	// Serving starts below in the meantime so probes can watch progress.
	if srv.Recovering() {
		logger.Printf("recovering: replaying %d WAL record(s)", len(st.Tail()))
		go func() {
			t := time.Now()
			records, updates := srv.Recover()
			logger.Printf("recovery complete in %s: %d record(s), %d update(s) replayed; epoch %d",
				time.Since(t).Round(time.Millisecond), records, updates, srv.Current().Epoch)
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		logger.Printf("serving on %s", *addr)
		if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("%v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Printf("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
}
