// Command gvload is the closed-loop load driver for gvserve: it fires
// pattern queries at a target QPS, measures end-to-end latency, and
// reports the percentile curve (p50/p90/p95/p99/max) plus achieved
// throughput, error and shed counts as JSON.
//
//	gvload -self -dataset youtube -qps 200 -duration 10s -json BENCH_PR6.json
//	gvload -addr http://host:8080 -dataset youtube -qps 500
//
// -self starts an in-process gvserve (same dataset flags) on a loopback
// port, so a single hermetic command produces the latency curve; with
// -write-every it also exercises snapshot publishes while the read load
// runs. -json merges the percentiles into a BENCH_*.json trajectory
// file in the cmd/benchjson format (names like
// ServeQuery/dataset=youtube/qps=200/p50, ns_per_op = latency), so the
// serving curve rides the same diff tooling as the micro benchmarks.
//
// -write-mix turns the driver into a mixed read/write workload: that
// fraction of arrivals become POST /update batches (-write-batch edges
// each) instead of queries. Read and write latencies are reported
// separately, and the per-batch view-maintenance cost is scraped from
// the server's gvserve_maintenance_* metrics before and after the run —
// so one command with -maint delta and one with -maint remat measures
// exactly what delta propagation saves:
//
//	gvload -self -dataset youtube -qps 200 -write-mix 0.05 -maint delta -json BENCH_PR8.json
//	gvload -self -dataset youtube -qps 200 -write-mix 0.05 -maint remat -json BENCH_PR8.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	gv "graphviews"
	"graphviews/internal/serve"
	"graphviews/internal/store"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gvload: "+format+"\n", args...)
	os.Exit(1)
}

// workload is the generated dataset: a graph (only used with -self) and
// the view set whose fragments the query mix glues together.
func workload(dataset string, nodes, edges, labels int, seed int64) (*gv.Graph, *gv.ViewSet) {
	switch dataset {
	case "youtube":
		return gv.GenerateYouTubeLike(nodes, edges, seed), gv.YouTubeViews()
	case "amazon":
		return gv.GenerateAmazonLike(nodes, edges, seed), gv.AmazonViews()
	case "citation":
		return gv.GenerateCitationLike(nodes, edges, seed), gv.CitationViews()
	case "uniform":
		return gv.GenerateUniform(nodes, edges, labels, seed), gv.SyntheticViews(labels, seed)
	default:
		fail("unknown -dataset %q (want youtube|amazon|citation|uniform)", dataset)
		return nil, nil
	}
}

// result is the JSON report of one run. The headline percentiles are
// read latencies; writes get their own block so a mixed run cannot
// smear update cost into the read curve.
type result struct {
	Dataset     string  `json:"dataset"`
	TargetQPS   int     `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	Duration    string  `json:"duration"`
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	Shed        int     `json:"shed"`
	Missed      int     `json:"missed_arrivals"`
	Publishes   int     `json:"publishes"`
	P50Us       float64 `json:"p50_us"`
	P90Us       float64 `json:"p90_us"`
	P95Us       float64 `json:"p95_us"`
	P99Us       float64 `json:"p99_us"`
	MaxUs       float64 `json:"max_us"`
	MeanUs      float64 `json:"mean_us"`

	// Mixed-workload block (present only with -write-mix > 0).
	WriteMix        float64 `json:"write_mix,omitempty"`
	MaintMode       string  `json:"maint_mode,omitempty"`
	Writes          int     `json:"writes,omitempty"`
	WriteP50Us      float64 `json:"write_p50_us,omitempty"`
	WriteP95Us      float64 `json:"write_p95_us,omitempty"`
	WriteP99Us      float64 `json:"write_p99_us,omitempty"`
	WriteMeanUs     float64 `json:"write_mean_us,omitempty"`
	MaintBatches    int64   `json:"maint_batches,omitempty"`
	MaintNsPerBatch float64 `json:"maint_ns_per_batch,omitempty"`
}

func main() {
	var (
		addr         = flag.String("addr", "", "gvserve base URL (e.g. http://127.0.0.1:8080); empty requires -self")
		self         = flag.Bool("self", false, "start an in-process gvserve on a loopback port and drive it")
		dataset      = flag.String("dataset", "youtube", "workload dataset: youtube|amazon|citation|uniform")
		nodes        = flag.Int("nodes", 20000, "generated graph nodes")
		edges        = flag.Int("edges", 80000, "generated graph edges")
		labels       = flag.Int("labels", 16, "label count for -dataset uniform")
		seed         = flag.Int64("seed", 1, "generator seed (graph, views and query mix)")
		qps          = flag.Int("qps", 200, "target arrival rate")
		duration     = flag.Duration("duration", 10*time.Second, "measurement window")
		concurrency  = flag.Int("concurrency", 32, "closed-loop worker count")
		queries      = flag.Int("queries", 8, "distinct glued queries in the mix")
		strategy     = flag.String("strategy", "minimal", "view-selection strategy: all|minimal|minimum")
		writeEvery   = flag.Duration("write-every", 0, "-self only: toggle edges and publish a new snapshot on this period (<=0 off)")
		writeMix     = flag.Float64("write-mix", 0, "fraction of arrivals issued as POST /update write batches (0 <= mix < 1; 0.05 = 95/5 read/write)")
		writeBatch   = flag.Int("write-batch", 4, "edge updates per write request (-write-mix); node ids drawn from [0,-nodes)")
		maintMode    = flag.String("maint", "delta", "-self only: view maintenance mode, delta or remat")
		flushAfter   = flag.Int("flush-after", 0, "-self only: buffer updates in the coalescing feed until this many deltas pend (<=0 immediate)")
		publishAfter = flag.Int("publish-after", 0, "-self only: publish once this many deltas pend (<=0 off)")
		workers      = flag.Int("workers", 0, "-self only: engine worker bound")
		shards       = flag.Int("shards", 1, "-self only: snapshot shard count")
		maxInFlight  = flag.Int("max-inflight", 256, "-self only: admission bound")
		dataDir      = flag.String("data-dir", "", "-self only: durable store directory (WAL + checkpoints); empty = ephemeral")
		walSync      = flag.String("wal-sync", "always", "-self only: WAL sync policy with -data-dir: always, none, or an interval like 50ms")
		useMmap      = flag.Bool("mmap", false, "-self only: memory-map checkpoint part files at load (zero-copy; unix only)")
		persistExts  = flag.Bool("persist-exts", true, "-self only: persist view extensions in checkpoints so restarts skip rematerialization")
		walBacklog   = flag.Int64("wal-backlog", 256<<20, "-self only: WAL high-water mark in bytes before /healthz degrades; <=0 unlimited")
		jsonOut      = flag.String("json", "", "merge percentiles into this BENCH_*.json trajectory file")
		name         = flag.String("name", "ServeQuery", "benchmark name prefix for -json entries")
	)
	flag.Parse()
	if *writeMix < 0 || *writeMix >= 1 {
		fail("-write-mix %v out of range [0,1)", *writeMix)
	}
	if *maintMode != "delta" && *maintMode != "remat" {
		fail("unknown -maint %q (want delta or remat)", *maintMode)
	}

	g, vs := workload(*dataset, *nodes, *edges, *labels, *seed)

	base := *addr
	var srv *serve.Server
	var publishes0 int64
	if *self {
		// Durable self-serving: writes go through the WAL exactly as a
		// real gvserve would, so -write-mix runs measure the append cost.
		var st *store.Store
		if *dataDir != "" {
			policy, err := store.ParseSyncPolicy(*walSync)
			if err != nil {
				fail("%v", err)
			}
			st, err = store.Open(*dataDir, store.Options{Sync: policy, Mmap: *useMmap})
			if err != nil {
				fail("%v", err)
			}
			defer st.Close()
		}
		var err error
		srv, err = serve.NewServer(g, vs, serve.Config{
			Workers:           *workers,
			Shards:            *shards,
			MaxInFlight:       *maxInFlight,
			PublishEvery:      *writeEvery, // publisher runs only when updates pend
			PublishAfter:      *publishAfter,
			FlushAfter:        *flushAfter,
			Rematerialize:     *maintMode == "remat",
			Store:             st,
			PersistExtensions: *persistExts,
			WALBacklogBytes:   *walBacklog,
		})
		if err != nil {
			fail("%v", err)
		}
		defer srv.Close()
		srv.Recover() // replay any WAL tail from a previous -data-dir run
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fail("%v", err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() {
			if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "gvload: http server: %v\n", err)
			}
		}()
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "gvload: self-serving %s on %s (%d views, %d pairs)\n",
			*dataset, base, vs.Card(), srv.Current().Exts.TotalEdges())
	}
	if base == "" {
		fail("need -addr or -self")
	}
	base = strings.TrimRight(base, "/")

	// Pre-render the query mix: glued queries are contained in the views
	// by construction, so every request exercises the full
	// contain→MatchJoin answer path rather than the not-contained exit.
	rng := rand.New(rand.NewSource(*seed))
	bodies := make([][]byte, *queries)
	for i := range bodies {
		bodies[i] = []byte(gv.GlueQuery(rng, vs, 3, 3).String())
	}
	queryURL := base + "/query?strategy=" + *strategy

	client := &http.Client{Timeout: 30 * time.Second}
	// Warm the path (pools, TCP) before the measurement window.
	for i := 0; i < 2; i++ {
		doQuery(client, queryURL, bodies[i%len(bodies)])
	}

	// Optional write/publish churn while the read load runs: toggle a
	// few random edges and publish, all through the HTTP surface.
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	if *writeEvery > 0 && *self {
		publishes0 = readPublishes(client, base)
		go func() {
			t := time.NewTicker(*writeEvery)
			defer t.Stop()
			wrng := rand.New(rand.NewSource(*seed + 1))
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					var sb strings.Builder
					for i := 0; i < 4; i++ {
						op := "add"
						if wrng.Intn(2) == 0 {
							op = "del"
						}
						fmt.Fprintf(&sb, "%s %d %d\n", op, wrng.Intn(*nodes), wrng.Intn(*nodes))
					}
					req, err := http.NewRequest(http.MethodPost, base+"/update?publish=1", strings.NewReader(sb.String()))
					if err != nil {
						continue // malformed base URL; queries will report it
					}
					if resp, err := client.Do(req); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	}

	// Closed-loop arrival pacing: a pacer emits one token per 1/qps
	// tick into a bounded backlog (one second deep); workers consume
	// tokens and issue one request each. When the server cannot keep
	// up, the backlog fills and further arrivals are counted as missed
	// instead of queueing unboundedly — achieved QPS then honestly
	// reports the sustainable rate.
	arrivals := make(chan struct{}, *qps)
	missed := 0
	go func() {
		interval := time.Second / time.Duration(*qps)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				close(arrivals)
				return
			case <-t.C:
				select {
				case arrivals <- struct{}{}:
				default:
					missed++
				}
			}
		}
	}()

	// Maintenance-cost baseline for the mixed workload: scrape the
	// cumulative propagation counters before and after the window; the
	// delta is exactly what this run's writes cost the view layer.
	updateURL := base + "/update"
	var maintNs0, maintBatches0 int64
	if *writeMix > 0 {
		maintNs0 = readMetric(client, base, "gvserve_maintenance_ns_total")
		maintBatches0 = readMetric(client, base, "gvserve_maintenance_batches_total")
	}

	type sample struct {
		ns    int64
		code  int
		write bool
	}
	perWorker := make([][]sample, *concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker rng: the write/read coin and write bodies must
			// not share the (unlocked) top-level rng across goroutines.
			wrng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			i := w
			for range arrivals {
				if *writeMix > 0 && wrng.Float64() < *writeMix {
					body := writeBody(wrng, *writeBatch, *nodes)
					t0 := time.Now()
					code := doQuery(client, updateURL, body)
					perWorker[w] = append(perWorker[w], sample{int64(time.Since(t0)), code, true})
					continue
				}
				body := bodies[i%len(bodies)]
				i++
				t0 := time.Now()
				code := doQuery(client, queryURL, body)
				perWorker[w] = append(perWorker[w], sample{int64(time.Since(t0)), code, false})
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats, wlats []float64
	res := result{
		Dataset:   *dataset,
		TargetQPS: *qps,
		Duration:  elapsed.Round(time.Millisecond).String(),
		Missed:    missed,
	}
	var sumNs, wSumNs int64
	for _, samples := range perWorker {
		for _, s := range samples {
			res.Requests++
			switch {
			case s.code == http.StatusTooManyRequests:
				res.Shed++
			case s.code != http.StatusOK:
				res.Errors++
			case s.write:
				res.Writes++
				wlats = append(wlats, float64(s.ns))
				wSumNs += s.ns
			default:
				lats = append(lats, float64(s.ns))
				sumNs += s.ns
			}
		}
	}
	if len(lats) == 0 {
		fail("no successful requests (errors=%d shed=%d)", res.Errors, res.Shed)
	}
	sort.Float64s(lats)
	sort.Float64s(wlats)
	pctOf := func(ls []float64, q float64) float64 {
		i := int(math.Ceil(q*float64(len(ls)))) - 1
		if i < 0 {
			i = 0
		}
		return ls[i] / 1e3 // ns → µs
	}
	pct := func(q float64) float64 { return pctOf(lats, q) }
	res.AchievedQPS = float64(len(lats)+len(wlats)) / elapsed.Seconds()
	res.P50Us, res.P90Us, res.P95Us = pct(0.50), pct(0.90), pct(0.95)
	res.P99Us, res.MaxUs = pct(0.99), lats[len(lats)-1]/1e3
	res.MeanUs = float64(sumNs) / float64(len(lats)) / 1e3
	if *writeMix > 0 {
		res.WriteMix = *writeMix
		res.MaintMode = *maintMode
		if len(wlats) > 0 {
			res.WriteP50Us = pctOf(wlats, 0.50)
			res.WriteP95Us = pctOf(wlats, 0.95)
			res.WriteP99Us = pctOf(wlats, 0.99)
			res.WriteMeanUs = float64(wSumNs) / float64(len(wlats)) / 1e3
		}
		res.MaintBatches = readMetric(client, base, "gvserve_maintenance_batches_total") - maintBatches0
		if res.MaintBatches > 0 {
			maintNs := readMetric(client, base, "gvserve_maintenance_ns_total") - maintNs0
			res.MaintNsPerBatch = float64(maintNs) / float64(res.MaintBatches)
		}
	}
	if srv != nil && *writeEvery > 0 {
		res.Publishes = int(readPublishes(client, base) - publishes0)
	}

	out, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fail("%v", err)
	}
	fmt.Println(string(out))

	if *jsonOut != "" {
		prefix := fmt.Sprintf("Benchmark%s/dataset=%s/qps=%d", *name, *dataset, *qps)
		if *writeMix > 0 {
			// Mixed runs get their own series keyed by mix and mode, so
			// read-only names stay comparable across trajectory files.
			prefix = fmt.Sprintf("%s/mix=%d/mode=%s", prefix, int(math.Round(*writeMix*100)), *maintMode)
		}
		entries := map[string]benchEntry{
			prefix + "/p50":  {Iterations: int64(len(lats)), NsPerOp: res.P50Us * 1e3},
			prefix + "/p90":  {Iterations: int64(len(lats)), NsPerOp: res.P90Us * 1e3},
			prefix + "/p95":  {Iterations: int64(len(lats)), NsPerOp: res.P95Us * 1e3},
			prefix + "/p99":  {Iterations: int64(len(lats)), NsPerOp: res.P99Us * 1e3},
			prefix + "/mean": {Iterations: int64(len(lats)), NsPerOp: res.MeanUs * 1e3},
		}
		if *writeMix > 0 && len(wlats) > 0 {
			entries[prefix+"/write_p50"] = benchEntry{Iterations: int64(len(wlats)), NsPerOp: res.WriteP50Us * 1e3}
			entries[prefix+"/write_p99"] = benchEntry{Iterations: int64(len(wlats)), NsPerOp: res.WriteP99Us * 1e3}
		}
		if res.MaintBatches > 0 {
			entries[prefix+"/maint_ns_per_batch"] = benchEntry{Iterations: res.MaintBatches, NsPerOp: res.MaintNsPerBatch}
		}
		if err := mergeTrajectory(*jsonOut, entries); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "gvload: merged %d entries into %s\n", len(entries), *jsonOut)
	}
}

// writeBody renders one /update batch: n random add/del lines over the
// node id range (del of a missing edge is a legal no-op, so a blind mix
// keeps the graph size roughly stationary).
func writeBody(rng *rand.Rand, n, nodes int) []byte {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		op := "add"
		if rng.Intn(2) == 0 {
			op = "del"
		}
		fmt.Fprintf(&sb, "%s %d %d\n", op, rng.Intn(nodes), rng.Intn(nodes))
	}
	return []byte(sb.String())
}

// doQuery posts one pattern body and returns the HTTP status (0 on
// transport error).
func doQuery(client *http.Client, url string, body []byte) int {
	resp, err := client.Post(url, "text/plain", bytes.NewReader(body))
	if err != nil {
		return 0
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// readPublishes scrapes gvserve_publish_total from /metrics.
func readPublishes(client *http.Client, base string) int64 {
	return readMetric(client, base, "gvserve_publish_total")
}

// readMetric scrapes one unlabeled integer series from /metrics (0 when
// unreachable or absent).
func readMetric(client *http.Client, base, metric string) int64 {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(buf), "\n") {
		var v int64
		if _, err := fmt.Sscanf(line, metric+" %d", &v); err == nil {
			return v
		}
	}
	return 0
}

// benchEntry mirrors cmd/benchjson's per-benchmark record so the merged
// file stays readable by `benchjson -diff`.
type benchEntry struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// mergeTrajectory folds entries into a BENCH_*.json file (creating it
// when absent), preserving existing benchmarks and the _meta block and
// keeping the deterministic sorted layout of cmd/benchjson.
func mergeTrajectory(path string, entries map[string]benchEntry) error {
	meta := map[string]string{"goarch": runtime.GOARCH, "goos": runtime.GOOS}
	benches := map[string]benchEntry{}
	if buf, err := os.ReadFile(path); err == nil {
		var doc struct {
			Meta       map[string]string     `json:"_meta"`
			Benchmarks map[string]benchEntry `json:"benchmarks"`
		}
		if err := json.Unmarshal(buf, &doc); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if doc.Meta != nil {
			meta = doc.Meta
		}
		if doc.Benchmarks != nil {
			benches = doc.Benchmarks
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	for k, v := range entries {
		benches[k] = v
	}

	var b strings.Builder
	b.WriteString("{\n  \"_meta\": ")
	mb, err := json.Marshal(meta) // encoding/json sorts map keys
	if err != nil {
		return err
	}
	b.Write(mb)
	b.WriteString(",\n  \"benchmarks\": {\n")
	names := make([]string, 0, len(benches))
	for n := range benches {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		eb, err := json.Marshal(benches[n])
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "    %q: %s", n, eb)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("  }\n}\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
