// Command doccheck lints the repo's documentation layer with no
// dependencies beyond the standard library. Three checks:
//
//  1. Markdown links: every relative link target in the given markdown
//     files must resolve to an existing file, and every fragment
//     (#anchor, in-file or cross-file) must match a heading in the
//     target document, using GitHub's heading-slug rules. Absolute
//     http(s)/mailto links are not fetched.
//  2. Doc comments: every exported top-level symbol (funcs, methods,
//     types, vars, consts) in the packages named by -pkgs must carry a
//     doc comment — the facade and contract packages stay godoc-clean.
//  3. Flag drift: every flag registered by the commands named by -flags
//     (flag.String/Int/Bool/... with a literal name) must be mentioned
//     as -<name> in the -flagsdoc operations document, so OPERATIONS.md
//     cannot silently fall behind the CLI surface.
//
// Usage:
//
//	doccheck [-pkgs dir,...] [-flags cmddir,...] [-flagsdoc ops.md] file.md [file.md ...]
//
// Exits non-zero listing every violation; silent on success.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

var violations int

func report(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	violations++
}

// --- markdown link checking ---

// linkRE matches inline markdown links/images: [text](target) with an
// optional "title". Reference-style links are not used in this repo.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^()\s]+)(?:\s+"[^"]*")?\)`)

// stripCode removes fenced code blocks and inline code spans so code
// that happens to look like a link is not checked as one.
func stripCode(src string) string {
	var out []string
	fenced := false
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			fenced = !fenced
			out = append(out, "")
			continue
		}
		if fenced {
			out = append(out, "")
			continue
		}
		out = append(out, inlineCodeRE.ReplaceAllString(line, ""))
	}
	return strings.Join(out, "\n")
}

var inlineCodeRE = regexp.MustCompile("`[^`]*`")

// slug converts a heading to its GitHub anchor id: lowercase, spaces to
// hyphens, punctuation (except hyphens/underscores) dropped.
func slug(heading string) string {
	heading = strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range heading {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// headingRE matches ATX headings; the capture is the heading text.
var headingRE = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)

// anchorsOf returns the set of heading slugs of a markdown document.
func anchorsOf(src string) map[string]bool {
	anchors := map[string]bool{}
	for _, m := range headingRE.FindAllStringSubmatch(stripCode(src), -1) {
		// Headings may contain inline code/links; slug their plain text.
		text := inlineCodeRE.ReplaceAllString(m[1], "")
		text = linkRE.ReplaceAllString(text, "")
		anchors[slug(text)] = true
	}
	return anchors
}

// checkMarkdown validates every relative link in one file. Documents
// are read at most once each via the cache.
func checkMarkdown(path string, cache map[string]string) {
	src, ok := readCached(path, cache)
	if !ok {
		report("%s: unreadable", path)
		return
	}
	for _, m := range linkRE.FindAllStringSubmatch(stripCode(src), -1) {
		target := m[1]
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
			strings.HasPrefix(target, "mailto:") {
			continue
		}
		file, frag, _ := strings.Cut(target, "#")
		resolved := path
		if file != "" {
			resolved = filepath.Join(filepath.Dir(path), file)
			if _, err := os.Stat(resolved); err != nil {
				report("%s: broken link %q: %s does not exist", path, target, resolved)
				continue
			}
		}
		if frag == "" {
			continue
		}
		dst, ok := readCached(resolved, cache)
		if !ok {
			report("%s: broken link %q: cannot read %s", path, target, resolved)
			continue
		}
		if !anchorsOf(dst)[frag] {
			report("%s: broken link %q: no heading with anchor #%s in %s", path, target, frag, resolved)
		}
	}
}

func readCached(path string, cache map[string]string) (string, bool) {
	if src, ok := cache[path]; ok {
		return src, true
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return "", false
	}
	cache[path] = string(b)
	return string(b), true
}

// --- exported-symbol doc comments ---

// checkPackageDocs parses every non-test .go file in dir and reports
// exported top-level symbols without a doc comment. A grouped
// declaration (`var (...)`, `const (...)`, `type (...)`) passes if the
// group or the individual spec is documented; later consts of an
// enumeration ride on the first one's comment (iota style) only when
// they share its spec group and the group is documented.
func checkPackageDocs(dir string) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		report("%s: %v", dir, err)
		return
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				checkDecl(fset, decl)
			}
		}
	}
}

func checkDecl(fset *token.FileSet, decl ast.Decl) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc.Text() == "" && exportedRecv(d) {
			report("%s: exported %s lacks a doc comment", fset.Position(d.Pos()), funcName(d))
		}
	case *ast.GenDecl:
		groupDoc := d.Doc.Text() != ""
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !groupDoc && s.Doc.Text() == "" && s.Comment.Text() == "" {
					report("%s: exported type %s lacks a doc comment", fset.Position(s.Pos()), s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if name.IsExported() && !groupDoc && s.Doc.Text() == "" && s.Comment.Text() == "" {
						report("%s: exported %s lacks a doc comment", fset.Position(s.Pos()), name.Name)
					}
				}
			}
		}
	}
}

// --- flag drift ---

// flagCtors are the flag-package constructors whose first argument is
// the flag name; the *Var forms share the name position one later, but
// this repo registers flags only through the value-returning forms.
var flagCtors = map[string]bool{
	"Bool": true, "Duration": true, "Float64": true, "Int": true,
	"Int64": true, "String": true, "Uint": true, "Uint64": true,
}

// checkCmdFlags parses one command directory and reports every
// registered flag whose -name does not appear in the operations
// document. The scan is syntactic: calls of the form
// flag.String("name", ...) with a literal first argument.
func checkCmdFlags(dir, docPath string, cache map[string]string) {
	doc, ok := readCached(docPath, cache)
	if !ok {
		report("%s: unreadable (needed for -flags %s)", docPath, dir)
		return
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		report("%s: %v", dir, err)
		return
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !flagCtors[sel.Sel.Name] || len(call.Args) < 1 {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "flag" {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil || name == "" {
					return true
				}
				if !strings.Contains(doc, "-"+name) {
					report("%s: flag -%s of %s is not documented in %s",
						fset.Position(lit.Pos()), name, dir, docPath)
				}
				return true
			})
		}
	}
}

// exportedRecv reports whether a func is package-level or a method on
// an exported receiver type — methods on unexported types are not part
// of the godoc surface.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return !ok || id.IsExported()
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "func " + d.Name.Name
	}
	return "method " + d.Name.Name
}

func main() {
	pkgs := flag.String("pkgs", "", "comma-separated package dirs whose exported symbols must have doc comments")
	flagDirs := flag.String("flags", "", "comma-separated command dirs whose registered flags must appear in -flagsdoc")
	flagsDoc := flag.String("flagsdoc", "OPERATIONS.md", "operations document that must mention every -flags command flag")
	flag.Parse()

	cache := map[string]string{}
	for _, md := range flag.Args() {
		checkMarkdown(md, cache)
	}
	if *pkgs != "" {
		for _, dir := range strings.Split(*pkgs, ",") {
			checkPackageDocs(strings.TrimSpace(dir))
		}
	}
	if *flagDirs != "" {
		for _, dir := range strings.Split(*flagDirs, ",") {
			checkCmdFlags(strings.TrimSpace(dir), *flagsDoc, cache)
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d violation(s)\n", violations)
		os.Exit(1)
	}
}
