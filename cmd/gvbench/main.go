// Command gvbench regenerates the paper's evaluation figures
// (Fig. 8(a)–(l), Section VII) over the synthetic dataset stand-ins.
//
//	gvbench                         # all figures at small scale
//	gvbench -fig 8a,8f -scale tiny  # selected figures
//	gvbench -scale paper            # the paper's graph sizes (slow!)
//	gvbench -workers -1             # materialize views on all cores
//	gvbench -frozen                 # run on the frozen CSR backend
//	gvbench -csv -out results/      # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"graphviews/internal/experiments"
)

func main() {
	var (
		figs    = flag.String("fig", "all", "comma-separated figure ids (8a..8l) or 'all'")
		scale   = flag.String("scale", "small", "tiny | small | medium | paper")
		seed    = flag.Int64("seed", 1, "workload seed")
		verify  = flag.Bool("verify", false, "cross-check every view answer against direct evaluation")
		queries = flag.Int("queries", 3, "queries averaged per data point")
		workers = flag.Int("workers", 1, "view-materialization parallelism (0 or 1 = sequential, -1 = GOMAXPROCS)")
		frozen  = flag.Bool("frozen", false, "evaluate against an immutable CSR snapshot (graph.Freeze) to A/B the graph backends")
		csv     = flag.Bool("csv", false, "also emit CSV")
		outDir  = flag.String("out", "", "directory for CSV files (implies -csv)")
	)
	flag.Parse()

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gvbench: %v\n", err)
		os.Exit(2)
	}
	cfg := experiments.Config{Scale: sc, Seed: *seed, Verify: *verify, QueriesPerPoint: *queries, Workers: *workers, Frozen: *frozen}

	ids := experiments.All
	if *figs != "all" {
		ids = strings.Split(*figs, ",")
	}
	if *outDir != "" {
		*csv = true
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "gvbench: %v\n", err)
			os.Exit(1)
		}
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		fig, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gvbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(fig.Table())
		fmt.Printf("(figure %s regenerated in %.1fs at scale %s)\n\n", id, time.Since(start).Seconds(), *scale)
		if *csv {
			out := fig.CSV()
			if *outDir != "" {
				path := filepath.Join(*outDir, "fig"+id+".csv")
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "gvbench: %v\n", err)
					os.Exit(1)
				}
			} else {
				fmt.Println(out)
			}
		}
	}
}
