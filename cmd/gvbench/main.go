// Command gvbench regenerates the paper's evaluation figures
// (Fig. 8(a)–(l), Section VII) over the synthetic dataset stand-ins.
//
//	gvbench                         # all figures at small scale
//	gvbench -fig 8a,8f -scale tiny  # selected figures
//	gvbench -scale paper            # the paper's graph sizes (slow!)
//	gvbench -workers -1             # materialize views on all cores
//	gvbench -frozen                 # run on the frozen CSR backend
//	gvbench -shards 4               # run on 4 hash-partitioned CSR shards
//	gvbench -csv -out results/      # machine-readable output
//	gvbench -cpuprofile cpu.pb.gz   # attach pprof evidence to perf PRs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"graphviews/internal/experiments"
)

func main() { os.Exit(run()) }

// run carries the whole CLI body so that error returns — unlike
// os.Exit — unwind the deferred profile writers (StopCPUProfile, the
// heap snapshot) and leave valid pprof files behind.
func run() int {
	var (
		figs    = flag.String("fig", "all", "comma-separated figure ids (8a..8l) or 'all'")
		scale   = flag.String("scale", "small", "tiny | small | medium | paper")
		seed    = flag.Int64("seed", 1, "workload seed")
		verify  = flag.Bool("verify", false, "cross-check every view answer against direct evaluation")
		queries = flag.Int("queries", 3, "queries averaged per data point")
		workers = flag.Int("workers", 1, "view-materialization parallelism (0 or 1 = sequential, -1 = GOMAXPROCS)")
		frozen  = flag.Bool("frozen", false, "evaluate against an immutable CSR snapshot (graph.Freeze) to A/B the graph backends")
		shards  = flag.Int("shards", 1, "split the graph into k hash partitions (graph.Shard); <2 = unsharded")
		csv     = flag.Bool("csv", false, "also emit CSV")
		outDir  = flag.String("out", "", "directory for CSV files (implies -csv)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the figure runs to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile (after the figure runs) to this file")
	)
	flag.Parse()

	// Profile files are created up front so flag typos fail before any
	// work runs; the deferred writers never os.Exit, which would skip
	// the LIFO-pending StopCPUProfile and leave a truncated profile.
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gvbench: %v\n", err)
			return 1
		}
		defer func() {
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "gvbench: memprofile: %v\n", err)
			}
			f.Close()
		}()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gvbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "gvbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gvbench: %v\n", err)
		return 2
	}
	cfg := experiments.Config{Scale: sc, Seed: *seed, Verify: *verify, QueriesPerPoint: *queries, Workers: *workers, Frozen: *frozen, Shards: *shards}

	ids := experiments.All
	if *figs != "all" {
		ids = strings.Split(*figs, ",")
	}
	if *outDir != "" {
		*csv = true
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "gvbench: %v\n", err)
			return 1
		}
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		fig, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gvbench: %v\n", err)
			return 1
		}
		fmt.Println(fig.Table())
		fmt.Printf("(figure %s regenerated in %.1fs at scale %s)\n\n", id, time.Since(start).Seconds(), *scale)
		if *csv {
			out := fig.CSV()
			if *outDir != "" {
				path := filepath.Join(*outDir, "fig"+id+".csv")
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "gvbench: %v\n", err)
					return 1
				}
			} else {
				fmt.Println(out)
			}
		}
	}
	return 0
}
