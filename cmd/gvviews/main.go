// Command gvviews materializes a set of view definitions over a data
// graph and writes the extensions for later view-based query answering
// with gvmatch.
//
//	gvviews -graph g.graph -views v.patterns -o v.ext
package main

import (
	"flag"
	"fmt"
	"os"

	"graphviews/internal/graph"
	"graphviews/internal/pattern"
	"graphviews/internal/view"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gvviews: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		graphPath = flag.String("graph", "", "data graph file (required)")
		viewsPath = flag.String("views", "", "pattern DSL file with view definitions (required)")
		out       = flag.String("o", "", "output extensions file (default stdout)")
		frozen    = flag.Bool("frozen", false, "materialize against an immutable CSR snapshot (graph.Freeze)")
		shards    = flag.Int("shards", 1, "materialize against k hash partitions (graph.Shard); <2 = unsharded")
	)
	flag.Parse()
	if *graphPath == "" || *viewsPath == "" {
		fail("-graph and -views are required")
	}

	gf, err := os.Open(*graphPath)
	if err != nil {
		fail("%v", err)
	}
	g, err := graph.Read(gf)
	gf.Close()
	if err != nil {
		fail("%v", err)
	}

	vsrc, err := os.ReadFile(*viewsPath)
	if err != nil {
		fail("%v", err)
	}
	ps, err := pattern.ParseAll(string(vsrc))
	if err != nil {
		fail("%v", err)
	}
	defs := make([]*view.Definition, len(ps))
	for i, p := range ps {
		defs[i] = view.Define("", p)
	}
	vs := view.NewSet(defs...)
	if err := vs.Validate(); err != nil {
		fail("%v", err)
	}

	var r graph.Reader = g
	if *frozen {
		r = graph.Freeze(g)
	}
	if *shards > 1 {
		r = graph.Shard(r, *shards)
	}
	x := view.Materialize(r, vs)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := view.WriteExtensions(w, x); err != nil {
		fail("%v", err)
	}
	for i, e := range x.Exts {
		fmt.Fprintf(os.Stderr, "gvviews: %-12s matched=%-5v pairs=%d\n",
			vs.Defs[i].Name, e.Result.Matched, e.Edges())
	}
	fmt.Fprintf(os.Stderr, "gvviews: |V(G)| = %d pairs = %.2f%% of |G|\n",
		x.TotalEdges(), 100*x.FractionOf(r))
}
