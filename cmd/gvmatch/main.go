// Command gvmatch evaluates a pattern query over a data graph — directly
// (Match/BMatch) or using materialized views (MatchJoin), which requires
// only the view definitions and their cached extensions, not the graph.
//
// Direct evaluation:
//
//	gvmatch -graph g.graph -query q.pattern [-engine sim|dual|strong]
//
// View-based evaluation (no -graph needed):
//
//	gvmatch -query q.pattern -views v.patterns -extensions v.ext -strategy minimum
package main

import (
	"flag"
	"fmt"
	"os"

	"graphviews/internal/core"
	"graphviews/internal/graph"
	"graphviews/internal/pattern"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gvmatch: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		graphPath = flag.String("graph", "", "data graph file (direct evaluation)")
		queryPath = flag.String("query", "", "pattern DSL file with the query (required)")
		viewsPath = flag.String("views", "", "pattern DSL file with view definitions")
		extPath   = flag.String("extensions", "", "materialized extensions file (from gvviews)")
		engine    = flag.String("engine", "sim", "sim | dual | strong (direct evaluation)")
		frozen    = flag.Bool("frozen", false, "freeze the graph into an immutable CSR snapshot before direct evaluation")
		shards    = flag.Int("shards", 1, "split the graph into k hash partitions before direct evaluation; <2 = unsharded")
		strategy  = flag.String("strategy", "minimal", "all | minimal | minimum (view-based)")
		verbose   = flag.Bool("v", false, "print full match sets, not just sizes")
	)
	flag.Parse()
	if *queryPath == "" {
		fail("-query is required")
	}
	qsrc, err := os.ReadFile(*queryPath)
	if err != nil {
		fail("%v", err)
	}
	q, err := pattern.Parse(string(qsrc))
	if err != nil {
		fail("%v", err)
	}

	var res *simulation.Result
	switch {
	case *extPath != "":
		if *viewsPath == "" {
			fail("-extensions requires -views")
		}
		vsrc, err := os.ReadFile(*viewsPath)
		if err != nil {
			fail("%v", err)
		}
		ps, err := pattern.ParseAll(string(vsrc))
		if err != nil {
			fail("%v", err)
		}
		defs := make([]*view.Definition, len(ps))
		for i, p := range ps {
			defs[i] = view.Define("", p)
		}
		vs := view.NewSet(defs...)
		ef, err := os.Open(*extPath)
		if err != nil {
			fail("%v", err)
		}
		x, err := view.ReadExtensions(ef, vs)
		ef.Close()
		if err != nil {
			fail("%v", err)
		}
		var strat core.Strategy
		switch *strategy {
		case "all":
			strat = core.UseAll
		case "minimal":
			strat = core.UseMinimal
		case "minimum":
			strat = core.UseMinimum
		default:
			fail("unknown strategy %q", *strategy)
		}
		var used []int
		res, used, err = core.Answer(q, x, strat)
		if err != nil {
			fail("%v", err)
		}
		names := make([]string, len(used))
		for i, u := range used {
			names[i] = vs.Defs[u].Name
		}
		fmt.Fprintf(os.Stderr, "gvmatch: answered from views %v without the data graph\n", names)
	case *graphPath != "":
		gf, err := os.Open(*graphPath)
		if err != nil {
			fail("%v", err)
		}
		g, err := graph.Read(gf)
		gf.Close()
		if err != nil {
			fail("%v", err)
		}
		var r graph.Reader = g
		if *frozen {
			r = graph.Freeze(g)
		}
		if *shards > 1 {
			r = graph.Shard(r, *shards)
		}
		switch *engine {
		case "sim":
			res = simulation.Simulate(r, q)
		case "dual":
			res = simulation.SimulateDual(r, q)
		case "strong":
			res = simulation.SimulateStrong(r, q)
		default:
			fail("unknown engine %q", *engine)
		}
	default:
		fail("either -graph (direct) or -views/-extensions (view-based) is required")
	}

	if !res.Matched {
		fmt.Printf("%s(G) = (empty)\n", q.Name)
		return
	}
	fmt.Printf("%s(G): |result| = %d edge matches\n", q.Name, res.Size())
	for i, e := range q.Edges {
		fmt.Printf("  (%s -> %s): %d matches\n",
			q.Nodes[e.From].Name, q.Nodes[e.To].Name, res.Edges[i].Len())
		if *verbose {
			for j, pr := range res.Edges[i].Pairs {
				fmt.Printf("    (%d, %d) dist=%d\n", pr.Src, pr.Dst, res.Edges[i].Dists[j])
			}
		}
	}
}
