package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"

	"graphviews/internal/analysis"
)

// vetConfig mirrors the JSON config cmd/go writes for a vet tool (the
// unitchecker protocol): one file per package, everything pre-resolved —
// source file list, import map, and compiled export data for every
// dependency.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package from a vet .cfg and returns the
// process exit code: 0 clean, 1 driver error, 2 findings (the exit
// protocol go vet expects).
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "gvcheck: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The driver must always produce the facts file go vet asked for,
	// even though these analyzers export none: cmd/go records it as the
	// action's output.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, lookup)

	pkg, err := analysis.Check(fset, cfg.ImportPath, files, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "gvcheck: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags := analysis.Run(pkg, analyzers)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
