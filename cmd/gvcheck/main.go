// Command gvcheck is the project's contract checker: a vet-compatible
// driver for the four analyzers in internal/analysis that mechanically
// enforce the repository's concurrency and ownership invariants:
//
//	readeralias   — results of graph.Reader accessors alias backend
//	                storage and must not be mutated or retained
//	scratchescape — arena/Scratch-backed slices must not escape into
//	                Results or other public structs
//	mutexguard    — `// guarded by <mu>` fields are accessed only under
//	                the named mutex
//	snapshotonce  — request-scoped code Loads the atomic snapshot
//	                pointer at most once
//
// Two modes:
//
//	go vet -vettool=$(which gvcheck) ./...   # unitchecker protocol
//	gvcheck [-json] [packages]               # standalone, default ./...
//
// The vettool mode is what `make analyze` runs: go vet drives gvcheck
// per package (including test files) with export data it has already
// built, so the whole sweep needs no network and no extra builds.
// Findings suppressed in source carry a //gvcheck:<directive> <why>
// annotation; see ARCHITECTURE.md "Invariants & static analysis".
package main

import (
	"crypto/sha256"
	"fmt"
	"os"
	"strings"

	"graphviews/internal/analysis"
	"graphviews/internal/analysis/mutexguard"
	"graphviews/internal/analysis/readeralias"
	"graphviews/internal/analysis/scratchescape"
	"graphviews/internal/analysis/snapshotonce"
)

// analyzers is the registry; order is the report order for ties.
var analyzers = []*analysis.Analyzer{
	readeralias.Analyzer,
	scratchescape.Analyzer,
	mutexguard.Analyzer,
	snapshotonce.Analyzer,
}

func main() {
	args := os.Args[1:]

	// Tool-identification handshake from cmd/go: `gvcheck -V=full` must
	// print a "name version devel ... buildID=<id>" line whose ID go vet
	// hashes into its cache key, so cached vet results are invalidated
	// whenever the gvcheck binary changes. Hashing our own executable is
	// the x/tools unitchecker idiom.
	if len(args) == 1 && args[0] == "-V=full" {
		id := "unknown"
		if exe, err := os.Executable(); err == nil {
			if data, err := os.ReadFile(exe); err == nil {
				id = fmt.Sprintf("%02x", sha256.Sum256(data))
			}
		}
		fmt.Printf("gvcheck version devel contract-suite buildID=%s\n", id)
		return
	}
	// Flag discovery handshake: we accept no pass-through vet flags.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Unitchecker mode: go vet hands us one <pkg>.cfg per package.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}

	os.Exit(standalone(args))
}
