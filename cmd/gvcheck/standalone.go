package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"

	"graphviews/internal/analysis"
)

// listPackage is the subset of `go list -json` output the standalone
// loader needs: source files for targets, compiled export data for the
// whole dependency closure.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	DepOnly    bool
	Module     *struct{ GoVersion string }
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// jsonDiagnostic is the -json output shape, one element per finding.
type jsonDiagnostic struct {
	Position string `json:"position"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// standalone runs the analyzers over package patterns without go vet:
// `go list -deps -export` supplies export data for every dependency
// (offline — the build cache compiles it), target packages are
// type-checked from source. Returns the process exit code.
func standalone(args []string) int {
	fs := flag.NewFlagSet("gvcheck", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON on stdout")
	list := fs.Bool("list", false, "list the registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cmdArgs := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gvcheck: go list: %v\n", err)
		return 1
	}

	exports := make(map[string]string) // import path → export data file
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listPackage
		if err := dec.Decode(&p); err != nil {
			fmt.Fprintf(os.Stderr, "gvcheck: decoding go list output: %v\n", err)
			return 1
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	exitCode := 0
	var jsonDiags []jsonDiagnostic
	for _, p := range targets {
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "gvcheck: %s: %s\n", p.ImportPath, p.Error.Err)
			exitCode = 1
			continue
		}
		if len(p.CgoFiles) > 0 {
			fmt.Fprintf(os.Stderr, "gvcheck: skipping %s (cgo)\n", p.ImportPath)
			continue
		}
		var files []*ast.File
		parseFailed := false
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, p.Dir+string(os.PathSeparator)+name, nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				exitCode = 1
				parseFailed = true
				break
			}
			files = append(files, f)
		}
		if parseFailed || len(files) == 0 {
			continue
		}

		importMap := p.ImportMap
		lookup := func(path string) (io.ReadCloser, error) {
			if canon, ok := importMap[path]; ok {
				path = canon
			}
			file, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}
		goVersion := ""
		if p.Module != nil {
			goVersion = "go" + p.Module.GoVersion
		}
		pkg, err := analysis.Check(fset, p.ImportPath, files,
			importer.ForCompiler(fset, "gc", lookup), goVersion)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gvcheck: type-checking %s: %v\n", p.ImportPath, err)
			exitCode = 1
			continue
		}
		for _, d := range analysis.Run(pkg, analyzers) {
			if *jsonOut {
				jsonDiags = append(jsonDiags, jsonDiagnostic{
					Position: d.Pos.String(), Analyzer: d.Analyzer, Message: d.Message,
				})
			} else {
				fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
			}
			if exitCode == 0 {
				exitCode = 2
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if jsonDiags == nil {
			jsonDiags = []jsonDiagnostic{}
		}
		if err := enc.Encode(jsonDiags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return exitCode
}
