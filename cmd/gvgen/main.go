// Command gvgen generates synthetic data graphs in the graphviews text
// format: the paper's uniform/densified synthetic graphs and the
// Amazon/Citation/YouTube stand-ins.
//
// Usage:
//
//	gvgen -kind youtube -n 100000 -m 280000 -seed 1 -o youtube.graph
//	gvgen -kind uniform -n 300000 -m 600000 -labels 10 -o g.graph
//	gvgen -kind densified -n 200000 -alpha 1.15 -o dense.graph
package main

import (
	"flag"
	"fmt"
	"os"

	"graphviews/internal/generator"
	"graphviews/internal/graph"
)

func main() {
	var (
		kind   = flag.String("kind", "uniform", "uniform | densified | amazon | citation | youtube")
		n      = flag.Int("n", 10000, "number of nodes")
		m      = flag.Int("m", 20000, "number of edges (uniform/amazon/citation/youtube)")
		labels = flag.Int("labels", 10, "label alphabet size (uniform/densified)")
		alpha  = flag.Float64("alpha", 1.1, "densification exponent (densified)")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *graph.Graph
	switch *kind {
	case "uniform":
		g = generator.Uniform(*n, *m, *labels, *seed)
	case "densified":
		g = generator.Densified(*n, *alpha, *labels, *seed)
	case "amazon":
		g = generator.AmazonLike(*n, *m, *seed)
	case "citation":
		g = generator.CitationLike(*n, *m, *seed)
	case "youtube":
		g = generator.YouTubeLike(*n, *m, *seed)
	default:
		fmt.Fprintf(os.Stderr, "gvgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gvgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := graph.Write(w, g); err != nil {
		fmt.Fprintf(os.Stderr, "gvgen: %v\n", err)
		os.Exit(1)
	}
	st := g.ComputeStats()
	fmt.Fprintf(os.Stderr, "gvgen: %s: |V|=%d |E|=%d labels=%d maxOut=%d maxIn=%d avgDeg=%.2f\n",
		*kind, st.Nodes, st.Edges, st.Labels, st.MaxOutDeg, st.MaxInDeg, st.AvgDeg)
}
