package graphviews

// Engine is the concurrent answer-from-views pipeline: the same
// algorithms as the package-level Materialize / Contains / MatchJoin /
// Answer entry points, with the parallel phases — one simulation per
// view, one containment match per view, one seeding pass per query edge,
// the distance-recording enumeration of bounded views, and the MatchJoin
// removal fixpoint itself, decomposed into reverse-topological waves of
// the pattern's SCC condensation — fanned out over a bounded worker
// pool, and with cooperative cancellation through a context.
//
// Every Engine method produces results byte-identical to its sequential
// counterpart at any parallelism; the package-level functions are thin
// wrappers over a single-worker engine. Engines are immutable after
// construction and safe for concurrent use.

import (
	"context"
	"runtime"

	"graphviews/internal/core"
	"graphviews/internal/simulation"
	"graphviews/internal/view"
)

// Engine runs view materialization and view-based query answering with a
// configurable worker pool and cancellation context. The zero value is
// not usable; call NewEngine.
//
// Each engine owns two scratch pools (simulation and MatchJoin working
// state): repeated Materialize/MatchJoin/Answer calls reuse bitset rows,
// support-counter arrays and worklists from per-query bump arenas
// instead of reallocating O(|V|·|Q|) state per call, which is what keeps
// the steady-state serving path nearly allocation-free. Pools are
// sync.Pool-backed, so concurrent use of one engine stays safe and
// scratches are dropped under memory pressure.
type Engine struct {
	parallelism int
	shards      int
	ctx         context.Context
	simScratch  *simulation.ScratchPool
	mjScratch   *core.ScratchPool
}

// Option configures an Engine.
type Option func(*Engine)

// WithParallelism bounds the worker pool to n goroutines; n <= 0 selects
// GOMAXPROCS. The default is GOMAXPROCS.
func WithParallelism(n int) Option {
	return func(e *Engine) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		e.parallelism = n
	}
}

// WithShards configures hash-partitioned snapshots: with n >= 2 every
// read-only engine call splits its frozen snapshot into n CSR shards
// (graph.Shard), so candidate seeding — the hottest phase of view
// materialization — fans out per shard over the worker pool with no
// shared label index and no lock. n == 1 disables sharding (the
// default); n <= 0 selects the automatic heuristic, which shards
// snapshots of at least autoShardSize into min(parallelism,
// maxAutoShards) partitions. Results are byte-identical at every shard
// count. A pre-built *Sharded passed to an engine call is always used
// as-is (pre-shard with Shard to amortize the split across calls, the
// same way a pre-built *Frozen amortizes the freeze).
func WithShards(n int) Option {
	return func(e *Engine) {
		e.shards = n
	}
}

// WithContext attaches a cancellation context: long-running engine calls
// observe ctx between work items and return ctx.Err() once it is
// cancelled. The default is context.Background().
func WithContext(ctx context.Context) Option {
	return func(e *Engine) {
		if ctx == nil {
			ctx = context.Background()
		}
		e.ctx = ctx
	}
}

// NewEngine builds an engine; by default it uses GOMAXPROCS workers and
// is never cancelled.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		parallelism: runtime.GOMAXPROCS(0),
		shards:      1,
		ctx:         context.Background(),
		simScratch:  simulation.NewScratchPool(),
		mjScratch:   core.NewScratchPool(),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Parallelism reports the engine's worker bound.
func (e *Engine) Parallelism() int { return e.parallelism }

// autoShardSize is the snapshot size (|V|+|E|) at which the auto-shard
// heuristic (WithShards with n <= 0) starts partitioning: below it the
// O(|V|+|E|) split costs more than the per-shard seeding saves.
const autoShardSize = 1 << 16

// maxAutoShards caps the partition count the auto heuristic picks;
// beyond the pool width extra shards only add merge work.
const maxAutoShards = 8

// shardCount resolves the engine's shard setting against a snapshot
// size: a fixed n >= 1 is used verbatim, n <= 0 applies the heuristic.
func (e *Engine) shardCount(size int) int {
	if e.shards >= 1 {
		return e.shards
	}
	if e.parallelism < 2 || size < autoShardSize {
		return 1
	}
	return min(e.parallelism, maxAutoShards)
}

// snapshot freezes g once per engine call so every worker shares one
// immutable CSR snapshot: no label-index mutex on the seeding path, no
// mutable state visible to the pool. An already-frozen reader is used
// as-is (Freeze is a no-op on *Frozen), and a pre-partitioned *Sharded
// is never flattened — it is the shard-parallel backend the call runs
// on. When sharding is configured (WithShards), the frozen snapshot is
// split into hash partitions here. The context is checked first so
// cancelled calls do not pay the O(|V|+|E|) freeze or split.
func (e *Engine) snapshot(g GraphReader) (GraphReader, error) {
	if err := e.ctx.Err(); err != nil {
		return nil, err
	}
	if sh, ok := g.(*Sharded); ok {
		return sh, nil
	}
	if k := e.shardCount(g.Size()); k > 1 {
		// Shard reads any backend directly — splitting the input in one
		// pass rather than freezing first, which would build a second
		// O(|V|+|E|) snapshot only to discard it.
		return Shard(g, k), nil
	}
	return Freeze(g), nil
}

// Snapshot builds the immutable read snapshot the engine's evaluation
// calls would run g through: a *Frozen CSR snapshot by default, or the
// hash-partitioned *Sharded form when sharding is configured
// (WithShards); a pre-built *Frozen or *Sharded is returned as-is. This
// is the accessor serving layers publish through — build the snapshot
// once under the writer's lock, store it behind an atomic pointer, and
// every concurrent query reads one immutable graph with no lock and no
// torn state (see internal/serve). It returns the engine context's
// error when already cancelled, before paying the O(|V|+|E|) build.
func (e *Engine) Snapshot(g GraphReader) (GraphReader, error) {
	return e.snapshot(g)
}

// WithRequest returns a request-scoped handle on the engine: a shallow
// copy sharing the warmed scratch pools, worker bound and shard
// configuration, with ctx attached in place of the engine's own. It is
// how a long-lived serving engine gives each request its own
// timeout/cancellation without rebuilding (and re-warming) the
// sync.Pool-backed scratches: the handle is as cheap as a struct copy,
// and any number of handles may run concurrently. A nil ctx means
// context.Background().
func (e *Engine) WithRequest(ctx context.Context) *Engine {
	if ctx == nil {
		ctx = context.Background()
	}
	d := *e
	d.ctx = ctx
	return &d
}

// Materialize evaluates every view over g concurrently (one worker task
// per view; spare workers accelerate bounded views' distance
// enumeration), producing the same extensions as the package-level
// Materialize. The engine auto-freezes g once per call, so the worker
// pool evaluates against a shared immutable CSR snapshot; pass a
// pre-built *Frozen (or *Sharded) to amortize the snapshot across
// calls. Over a sharded snapshot (WithShards, or a pre-built *Sharded)
// candidate seeding fans out per shard across the pool.
func (e *Engine) Materialize(g GraphReader, vs *ViewSet) (*Extensions, error) {
	r, err := e.snapshot(g)
	if err != nil {
		return nil, err
	}
	return view.MaterializePooled(e.ctx, r, vs, e.parallelism, e.simScratch)
}

// MaterializeDual is the dual-simulation counterpart of Materialize; it
// auto-freezes g the same way.
func (e *Engine) MaterializeDual(g GraphReader, vs *ViewSet) (*Extensions, error) {
	r, err := e.snapshot(g)
	if err != nil {
		return nil, err
	}
	return view.MaterializeDualPooled(e.ctx, r, vs, e.parallelism, e.simScratch)
}

// BuildDistIndex builds I(V) with per-extension partial indexes computed
// concurrently and merged keeping minimum distances.
func (e *Engine) BuildDistIndex(x *Extensions) (*DistIndex, error) {
	return view.BuildDistIndexWith(e.ctx, x, e.parallelism)
}

// Contains decides Qs ⊑ V with the per-view matches computed
// concurrently.
func (e *Engine) Contains(q *Pattern, vs *ViewSet) (*Lambda, bool, error) {
	return core.ContainWith(e.ctx, q, vs, e.parallelism)
}

// MatchJoin evaluates q from extensions only: every query edge's match
// set is seeded concurrently, then the removal fixpoint runs per SCC of
// the pattern in reverse-topological waves — components of one wave
// share no kill-propagation dependency, so each runs its support-counter
// cascade on its own worker. Results and Stats are byte-identical to the
// package-level MatchJoin at every parallelism.
func (e *Engine) MatchJoin(q *Pattern, x *Extensions, l *Lambda) (*Result, Stats, error) {
	return core.MatchJoinPooled(e.ctx, q, x, l, e.parallelism, e.mjScratch)
}

// Answer computes Q(G) from materialized extensions only, like the
// package-level Answer, with containment matching, MatchJoin seeding and
// the per-SCC MatchJoin fixpoint parallelized. The Stats expose the
// MatchJoin work counters.
func (e *Engine) Answer(q *Pattern, x *Extensions, s Strategy) (*Result, []int, Stats, error) {
	return core.AnswerPooled(e.ctx, q, x, s, e.parallelism, e.mjScratch)
}

// Maintain materializes vs over g through the engine's worker pool and
// returns extensions that refresh concurrently under edge updates. The
// engine context bounds only the initial materialization: once updates
// start mutating the graph, refreshes run to completion so the cached
// extensions never fall out of sync with the graph. Maintain is the one
// engine entry point that requires the mutable *Graph (it writes); it
// never freezes, since a snapshot would immediately go stale.
func (e *Engine) Maintain(g *Graph, vs *ViewSet) (*Maintained, error) {
	return view.NewMaintainedWith(e.ctx, g, vs, e.parallelism)
}

// MaintainFrom is Maintain with the initial materialization already in
// hand: x must be exactly the extensions of vs=x.Set over g — e.g.
// restored from a durable checkpoint taken at g's write clock — and is
// adopted as-is, skipping the materialization pass entirely. Updates
// refresh through the same delta-propagation pipeline as Maintain.
func (e *Engine) MaintainFrom(g *Graph, x *Extensions) *Maintained {
	return view.NewMaintainedFromExtensions(g, x, e.parallelism)
}
