package graphviews

// Synthetic dataset and workload generators, re-exported from the
// generator substrate so downstream users (and the runnable examples) can
// reproduce the paper's evaluation workloads through the public API.

import (
	"math/rand"

	"graphviews/internal/generator"
)

// GenerateUniform builds the paper's synthetic random graph: n nodes over
// k uniform labels, m random edges.
func GenerateUniform(n, m, k int, seed int64) *Graph {
	return generator.Uniform(n, m, k, seed)
}

// GenerateDensified builds a synthetic graph with |E| = |V|^alpha
// (densification law).
func GenerateDensified(n int, alpha float64, k int, seed int64) *Graph {
	return generator.Densified(n, alpha, k, seed)
}

// GenerateAmazonLike builds a product co-purchasing network in the schema
// of the paper's Amazon snapshot.
func GenerateAmazonLike(n, m int, seed int64) *Graph {
	return generator.AmazonLike(n, m, seed)
}

// GenerateCitationLike builds an acyclic citation network in the schema
// of the paper's Citation snapshot.
func GenerateCitationLike(n, m int, seed int64) *Graph {
	return generator.CitationLike(n, m, seed)
}

// GenerateYouTubeLike builds a related-video network in the schema of the
// paper's YouTube snapshot (category/age/rate/length/visits attributes).
func GenerateYouTubeLike(n, m int, seed int64) *Graph {
	return generator.YouTubeLike(n, m, seed)
}

// YouTubeViews returns the 12 Fig. 7-style recommendation views.
func YouTubeViews() *ViewSet { return generator.YouTubeViews() }

// AmazonViews returns 12 frequent co-purchase pattern views.
func AmazonViews() *ViewSet { return generator.AmazonViews() }

// CitationViews returns 12 citation pattern views.
func CitationViews() *ViewSet { return generator.CitationViews() }

// SyntheticViews returns the 22 synthetic views over k labels.
func SyntheticViews(k int, seed int64) *ViewSet { return generator.SyntheticViews(k, seed) }

// BoundedViews copies a view set with every edge bound set to b.
func BoundedViews(vs *ViewSet, b Bound) *ViewSet { return generator.BoundedSet(vs, b) }

// GlueQuery composes view fragments into a query that is contained in vs
// by construction — the workload generator of the paper's evaluation.
func GlueQuery(rng *rand.Rand, vs *ViewSet, minNodes, minEdges int) *Pattern {
	return generator.GlueQuery(rng, vs, minNodes, minEdges)
}

// RandomPattern builds a random connected DAG or cyclic pattern over k
// synthetic labels (the Exp-3 workloads).
func RandomPattern(rng *rand.Rand, nv, ne, k int, cyclic bool) *Pattern {
	return generator.RandomPattern(rng, nv, ne, k, cyclic)
}

// NecklaceQuery builds a k-bead "necklace" query — k directed cycles
// chained by bridge edges of the given bound — plus a view set containing
// it by construction. Its pattern condenses into many SCCs, which makes
// it the stress workload of the SCC-parallel MatchJoin fixpoint.
func NecklaceQuery(rng *rand.Rand, k int, bridgeBound Bound) (*Pattern, *ViewSet) {
	return generator.Necklace(rng, k, bridgeBound)
}

// NecklaceGraph builds a random data graph over a necklace query's
// labels: n nodes, m random edges.
func NecklaceGraph(rng *rand.Rand, q *Pattern, n, m int) *Graph {
	return generator.NecklaceGraph(rng, q, n, m)
}
