package graphviews_test

import (
	"fmt"

	gv "graphviews"
)

// ExampleAnswer demonstrates answering a pattern query from materialized
// views without touching the data graph (the paper's Fig. 1 in miniature).
func ExampleAnswer() {
	g := gv.NewGraph()
	bob := g.AddNode("PM")
	mat := g.AddNode("DBA")
	dan := g.AddNode("PRG")
	g.AddEdge(bob, mat)
	g.AddEdge(bob, dan)
	g.AddEdge(mat, dan)
	g.AddEdge(dan, mat)

	v1, _ := gv.ParsePattern(`pattern V1 {
  node pm: PM
  node dba: DBA
  node prg: PRG
  edge pm -> dba
  edge pm -> prg
}`)
	v2, _ := gv.ParsePattern(`pattern V2 {
  node dba: DBA
  node prg: PRG
  edge dba -> prg
  edge prg -> dba
}`)
	views := gv.NewViewSet(gv.Define("V1", v1), gv.Define("V2", v2))
	exts := gv.Materialize(g, views)

	q, _ := gv.ParsePattern(`pattern Team {
  node pm: PM
  node dba: DBA
  node prg: PRG
  edge pm -> dba
  edge pm -> prg
  edge dba -> prg
  edge prg -> dba
}`)
	res, used, err := gv.Answer(q, exts, gv.UseMinimal)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("views used: %d, matched: %v, result size: %d\n",
		len(used), res.Matched, res.Size())
	// Output: views used: 2, matched: true, result size: 4
}

// ExampleContains shows the containment check that decides answerability
// (Theorem 1 of the paper).
func ExampleContains() {
	v, _ := gv.ParsePattern(`pattern V {
  node a: A
  node b: B
  edge a -> b
}`)
	views := gv.NewViewSet(gv.Define("V", v))

	q1, _ := gv.ParsePattern(`pattern Q1 {
  node a: A
  node b: B
  edge a -> b
}`)
	q2, _ := gv.ParsePattern(`pattern Q2 {
  node a: A
  node c: C
  edge a -> c
}`)
	_, ok1, _ := gv.Contains(q1, views)
	_, ok2, _ := gv.Contains(q2, views)
	fmt.Printf("Q1 contained: %v, Q2 contained: %v\n", ok1, ok2)
	// Output: Q1 contained: true, Q2 contained: false
}

// ExampleMatch evaluates a bounded pattern directly (BMatch).
func ExampleMatch() {
	g := gv.NewGraph()
	a := g.AddNode("A")
	x := g.AddNode("X")
	b := g.AddNode("B")
	g.AddEdge(a, x)
	g.AddEdge(x, b)

	q, _ := gv.ParsePattern(`pattern Q {
  node a: A
  node b: B
  edge a -> b <=2
}`)
	res := gv.Match(g, q)
	fmt.Printf("matched: %v, pairs: %d, distance: %d\n",
		res.Matched, res.Edges[0].Len(), res.Edges[0].Dists[0])
	// Output: matched: true, pairs: 1, distance: 2
}

// ExampleEngine_Snapshot shows the serving pattern behind cmd/gvserve:
// freeze the graph once into an immutable snapshot, materialize the
// views over it, then answer any number of concurrent queries from that
// snapshot — no locks, no mutable state on the read path.
func ExampleEngine_Snapshot() {
	g := gv.NewGraph()
	a := g.AddNode("A")
	b := g.AddNode("B")
	g.AddNode("B") // unmatched spare
	g.AddEdge(a, b)

	v, _ := gv.ParsePattern(`pattern V {
  node a: A
  node b: B
  edge a -> b
}`)
	views := gv.NewViewSet(gv.Define("V", v))

	eng := gv.NewEngine(gv.WithParallelism(2))
	snap, _ := eng.Snapshot(g) // immutable CSR snapshot (*Frozen)
	exts, _ := eng.Materialize(snap, views)

	// The (snap, exts) pair is one published epoch: share it behind an
	// atomic pointer and serve every request from it.
	q, _ := gv.ParsePattern(`pattern Q {
  node a: A
  node b: B
  edge a -> b
}`)
	res, _, _, _ := eng.Answer(q, exts, gv.UseMinimal)
	_, frozen := snap.(*gv.Frozen)
	fmt.Printf("immutable: %v, matched: %v, size: %d\n", frozen, res.Matched, res.Size())
	// Output: immutable: true, matched: true, size: 1
}

// ExampleMaintained_SnapshotExtensions shows the publish step of a
// snapshot-swap service: updates accumulate in the maintained views,
// and each SnapshotExtensions call captures an immutable epoch —
// earlier snapshots keep answering from their own state.
func ExampleMaintained_SnapshotExtensions() {
	g := gv.NewGraph()
	g.AddNode("A") // 0
	g.AddNode("A") // 1
	g.AddNode("B") // 2
	g.AddNode("B") // 3
	g.AddEdge(0, 2)

	v, _ := gv.ParsePattern(`pattern V {
  node a: A
  node b: B
  edge a -> b
}`)
	m := gv.NewMaintained(g, gv.NewViewSet(gv.Define("V", v)))

	epoch1 := m.SnapshotExtensions() // publish epoch 1
	m.ApplyBatch([]gv.EdgeUpdate{{From: 1, To: 3}})
	epoch2 := m.SnapshotExtensions() // publish epoch 2

	q, _ := gv.ParsePattern(`pattern Q {
  node a: A
  node b: B
  edge a -> b
}`)
	r1, _, _ := gv.Answer(q, epoch1, gv.UseMinimal)
	r2, _, _ := gv.Answer(q, epoch2, gv.UseMinimal)
	fmt.Printf("epoch 1 size: %d, epoch 2 size: %d, version: %d\n",
		r1.Size(), r2.Size(), m.Version())
	// Output: epoch 1 size: 1, epoch 2 size: 2, version: 1
}
