//go:build race

package graphviews_test

// raceEnabled gates the allocation regression bounds: the race runtime
// instruments allocations, so AllocsPerRun numbers are not comparable
// under -race.
const raceEnabled = true
