package graphviews_test

// Frozen-vs-mutable backend A/B benchmarks. BenchmarkSimFrozen isolates
// the simulation engines — whose candidate seeding is the NodesWithLabel
// hot path that the frozen backend serves from a prebuilt, mutex-free
// label partition — and BenchmarkAnswerFrozen measures the full
// materialize+answer pipeline over the worker sweep, where every worker
// shares one immutable CSR snapshot. Run via `make bench-frozen`.

import (
	"fmt"
	"math/rand"
	"testing"

	gv "graphviews"
)

// frozenBenchBackends pairs the mutable graph with its CSR snapshot.
func frozenBenchBackends(g *gv.Graph) []struct {
	name string
	r    gv.GraphReader
} {
	return []struct {
		name string
		r    gv.GraphReader
	}{
		{"mutable", g},
		{"frozen", gv.Freeze(g)},
	}
}

// BenchmarkSimFrozen A/Bs direct simulation across backends: plain
// queries (label-index seeding + refinement fixpoint) and bounded
// queries (adds the BFS-heavy distance enumeration).
func BenchmarkSimFrozen(b *testing.B) {
	g, vs, _, q, _ := microWorkload()
	bvs := gv.BoundedViews(vs, 2)
	rng := rand.New(rand.NewSource(11))
	bq := gv.GlueQuery(rng, bvs, 4, 6)

	for _, be := range frozenBenchBackends(g) {
		b.Run("plain/backend="+be.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gv.Match(be.r, q)
			}
		})
		b.Run("bounded/backend="+be.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				gv.Match(be.r, bq)
			}
		})
	}
}

// BenchmarkAnswerFrozen sweeps the materialize+answer pipeline over
// worker counts on both inputs: handing the Engine the mutable graph
// (it auto-freezes once per Materialize call) versus a pre-built
// snapshot (the freeze is amortized across iterations).
func BenchmarkAnswerFrozen(b *testing.B) {
	g, vs, _, q, _ := microWorkload()
	for _, be := range frozenBenchBackends(g) {
		for _, w := range workerSweep {
			b.Run(fmt.Sprintf("backend=%s/workers=%d", be.name, w), func(b *testing.B) {
				eng := gv.NewEngine(gv.WithParallelism(w))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					x, err := eng.Materialize(be.r, vs)
					if err != nil {
						b.Fatal(err)
					}
					if _, _, _, err := eng.Answer(q, x, gv.UseAll); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
