package graphviews_test

// Regression pin for the Sim-vs-Simulate isolated-sink gap documented in
// internal/core's finish() since PR 2: MatchJoin sees only the views, so
// a sink match with no incoming matched edge — which direct simulation
// reports in Sim — cannot be recovered from extensions; the paper-defined
// answer Qs(G) (the per-edge match sets) agrees regardless. This test
// turns that comment into an executed expectation at the public API,
// across all three graph backends, so the behavior cannot silently drift
// in either direction: if Answer ever starts reporting the isolated
// node, or stops agreeing with Match on the edge match sets, or Match
// stops reporting the isolated node, it fails.

import (
	"testing"

	gv "graphviews"
)

// sinkGapInstance: query w1 -> u <- w2 with sink u, one single-edge view
// per query edge, and a graph where u's matches split across the two
// in-edges (c only via w1, d only via w2) plus an isolated U node e that
// only direct simulation can witness.
func sinkGapInstance() (*gv.Graph, *gv.Pattern, *gv.ViewSet, int, gv.NodeID) {
	g := gv.NewGraph()
	a := g.AddNode("W1")
	b := g.AddNode("W2")
	c := g.AddNode("U")
	d := g.AddNode("U")
	e := g.AddNode("U") // isolated: in Simulate's Sim only
	g.AddEdge(a, c)
	g.AddEdge(b, d)

	q := gv.NewPattern("sink")
	w1 := q.AddNode("w1", "W1")
	w2 := q.AddNode("w2", "W2")
	u := q.AddNode("u", "U")
	q.AddEdge(w1, u)
	q.AddEdge(w2, u)

	v1 := gv.NewPattern("v1")
	v1.AddEdge(v1.AddNode("a", "W1"), v1.AddNode("b", "U"))
	v2 := gv.NewPattern("v2")
	v2.AddEdge(v2.AddNode("a", "W2"), v2.AddNode("b", "U"))
	vs := gv.NewViewSet(gv.Define("", v1), gv.Define("", v2))
	return g, q, vs, u, e
}

func hasNode(list []gv.NodeID, v gv.NodeID) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

func TestSinkGapPinnedAcrossBackends(t *testing.T) {
	g, q, vs, u, isolated := sinkGapInstance()
	backends := map[string]gv.GraphReader{
		"mutable": g,
		"frozen":  gv.Freeze(g),
		"sharded": gv.Shard(g, 2),
	}
	for name, r := range backends {
		t.Run(name, func(t *testing.T) {
			want := gv.Match(r, q)
			if !want.Matched {
				t.Fatalf("direct simulation should match")
			}
			// Direct simulation reports the isolated sink match: nothing
			// constrains a sink beyond its node condition.
			if !hasNode(want.Sim[u], isolated) {
				t.Fatalf("Simulate's sink Sim %v lost the isolated node %d",
					want.Sim[u], isolated)
			}

			x := gv.Materialize(r, vs)
			res, _, err := gv.Answer(q, x, gv.UseAll)
			if err != nil {
				t.Fatal(err)
			}
			// The paper-defined part of the answer — the edge match sets
			// Qs(G) — must agree exactly with direct simulation.
			if !res.Equal(want) {
				t.Fatalf("view-based edge match sets differ from Simulate\ngot:  %v\nwant: %v",
					res, want)
			}
			// The documented gap: views cannot witness a sink match with no
			// incoming matched edge, so the isolated node is absent from
			// the derived Sim — and both split matches are present (union
			// over in-edge witnesses, not intersection).
			if hasNode(res.Sim[u], isolated) {
				t.Fatalf("Answer's sink Sim %v reports the isolated node views cannot witness",
					res.Sim[u])
			}
			if !hasNode(res.Sim[u], 2) || !hasNode(res.Sim[u], 3) {
				t.Fatalf("Answer's sink Sim %v must union both single-witness matches",
					res.Sim[u])
			}
			// Non-sink nodes carry no gap: exact agreement.
			for n := range q.Nodes {
				if n == u {
					continue
				}
				if len(res.Sim[n]) != len(want.Sim[n]) {
					t.Fatalf("Sim[%d] = %v, want %v", n, res.Sim[n], want.Sim[n])
				}
			}
		})
	}
}
