package graphviews_test

// Acceptance harness for the sharded backend: on the generator
// workloads, materialization and answering over graph.Shard must be
// byte-identical — results, view choices and Stats — to the frozen and
// mutable backends across the full workers {1,2,4,8} × shards {1,2,3,8}
// matrix, whether the engine shards internally (WithShards) or is handed
// a pre-partitioned *Sharded. Run with -race: the shard-parallel
// candidate seeding scans per-shard label partitions concurrently, and
// the merge-on-read NodesWithLabel cache is hit from many workers.

import (
	"math/rand"
	"reflect"
	"testing"

	gv "graphviews"
)

var (
	shardedWorkerSweep = []int{1, 2, 4, 8}
	shardedShardSweep  = []int{1, 2, 3, 8}
)

// TestShardedEquivalenceAcrossWorkersAndShards is the differential
// harness of the sharded backend: extensions, answers and stats from any
// point of the workers × shards matrix must equal the sequential
// mutable-backend reference.
func TestShardedEquivalenceAcrossWorkersAndShards(t *testing.T) {
	for name, wl := range engineWorkloads() {
		t.Run(name, func(t *testing.T) {
			ref := gv.Materialize(wl.g, wl.vs) // mutable, sequential reference
			fz := gv.Freeze(wl.g)

			rng := rand.New(rand.NewSource(137))
			queries := make([]*gv.Pattern, 3)
			for i := range queries {
				queries[i] = gv.GlueQuery(rng, wl.vs, 4, 6)
			}

			for _, w := range shardedWorkerSweep {
				for _, k := range shardedShardSweep {
					eng := gv.NewEngine(gv.WithParallelism(w), gv.WithShards(k))
					// Two input routes: the engine splitting the snapshot
					// itself, and a pre-partitioned backend used as-is.
					inputs := map[string]gv.GraphReader{
						"mutable":    wl.g,
						"presharded": gv.Shard(fz, k),
					}
					for route, in := range inputs {
						x, err := eng.Materialize(in, wl.vs)
						if err != nil {
							t.Fatalf("w=%d k=%d %s: %v", w, k, route, err)
						}
						for i := range ref.Exts {
							if !x.Exts[i].Result.Equal(ref.Exts[i].Result) {
								t.Fatalf("w=%d k=%d %s view %q: sharded extension differs",
									w, k, route, wl.vs.Defs[i].Name)
							}
						}
						for qi, q := range queries {
							refRes, refUsed, refErr := gv.Answer(q, ref, gv.UseAll)
							res, used, stats, err := eng.Answer(q, x, gv.UseAll)
							if (refErr == nil) != (err == nil) {
								t.Fatalf("w=%d k=%d %s query %d: err %v vs %v",
									w, k, route, qi, refErr, err)
							}
							if refErr != nil {
								continue
							}
							if !res.Equal(refRes) {
								t.Fatalf("w=%d k=%d %s query %d: sharded answer differs",
									w, k, route, qi)
							}
							if len(used) != len(refUsed) {
								t.Fatalf("w=%d k=%d %s query %d: view choice differs",
									w, k, route, qi)
							}
							// Stats must also be identical across backends at
							// the same worker count: MatchJoin sees only the
							// extensions, so any divergence means the
							// extensions differ.
							_, _, refStats, err := eng.Answer(q, ref, gv.UseAll)
							if err != nil {
								t.Fatalf("w=%d k=%d %s query %d: %v", w, k, route, qi, err)
							}
							if stats != refStats {
								t.Fatalf("w=%d k=%d %s query %d: stats %+v vs %+v",
									w, k, route, qi, stats, refStats)
							}
						}
					}
				}
			}
		})
	}
}

// TestShardUnshardFreezeIdentity: Shard→Unshard must reproduce the
// frozen snapshot of the source exactly, field for field, at every shard
// count of the sweep — through the public API, mirroring the internal
// round-trip tests.
func TestShardUnshardFreezeIdentity(t *testing.T) {
	for name, wl := range engineWorkloads() {
		t.Run(name, func(t *testing.T) {
			want := gv.Freeze(wl.g)
			for _, k := range shardedShardSweep {
				sh := gv.Shard(wl.g, k)
				if got := sh.Unshard(); !reflect.DeepEqual(want, got) {
					t.Fatalf("k=%d: Shard→Unshard != Freeze", k)
				}
				if gv.Shard(sh, k) != sh {
					t.Fatalf("k=%d: re-sharding at the same k must be a no-op", k)
				}
			}
		})
	}
}

// TestShardedDirectEvaluation: the direct Match entry points must agree
// across all three backends (the sharded one exercises merge-on-read
// NodesWithLabel through the sequential seeding path).
func TestShardedDirectEvaluation(t *testing.T) {
	wl := engineWorkloads()["youtube"]
	sh := gv.Shard(wl.g, 3)
	rng := rand.New(rand.NewSource(21))
	for qi := 0; qi < 4; qi++ {
		q := gv.GlueQuery(rng, wl.vs, 3, 5)
		want := gv.Match(wl.g, q)
		if got := gv.Match(sh, q); !got.Equal(want) {
			t.Fatalf("query %d: Match over sharded differs from mutable", qi)
		}
		wantDual := gv.MatchDual(wl.g, q)
		if got := gv.MatchDual(sh, q); !got.Equal(wantDual) {
			t.Fatalf("query %d: MatchDual over sharded differs from mutable", qi)
		}
	}
}
