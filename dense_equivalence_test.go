package graphviews_test

// Facade-level differential harness for the PR 4 dense kernels and
// scratch pools: one long-lived Engine answering many queries over its
// warmed per-engine scratch pools must return results byte-identical to
// the package-level sequential entry points (which run the same dense
// kernels on transient scratches) at workers 1/2/4/8, on plain, bounded
// and dual workloads — and identically on the mutable and frozen
// backends. Catches any state leaking between queries through the
// pooled arenas.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	gv "graphviews"
)

func TestEngineScratchPoolReuse(t *testing.T) {
	g := gv.GenerateYouTubeLike(3_000, 9_000, 21)
	vs := gv.YouTubeViews()
	bvs := gv.BoundedViews(vs, 2)
	fz := gv.Freeze(g)

	type workload struct {
		name string
		vs   *gv.ViewSet
	}
	workloads := []workload{{"plain", vs}, {"bounded", bvs}}

	for _, wl := range workloads {
		wantX := gv.Materialize(g, wl.vs)
		rng := rand.New(rand.NewSource(91))
		queries := make([]*gv.Pattern, 0, 6)
		for len(queries) < 6 {
			q := gv.GlueQuery(rng, wl.vs, 3+rng.Intn(3), 5+rng.Intn(3))
			if _, ok, err := gv.Contains(q, wl.vs); err == nil && ok {
				queries = append(queries, q)
			}
		}
		wants := make([]*gv.Result, len(queries))
		for i, q := range queries {
			res, _, err := gv.Answer(q, wantX, gv.UseAll)
			if err != nil {
				t.Fatalf("%s: sequential answer: %v", wl.name, err)
			}
			wants[i] = res
		}

		for _, w := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", wl.name, w), func(t *testing.T) {
				eng := gv.NewEngine(gv.WithParallelism(w))
				// Three rounds over one engine: rounds 2 and 3 run
				// entirely on recycled scratch arenas.
				for round := 0; round < 3; round++ {
					for _, r := range []gv.GraphReader{g, fz} {
						x, err := eng.Materialize(r, wl.vs)
						if err != nil {
							t.Fatal(err)
						}
						for i := range x.Exts {
							if !x.Exts[i].Result.Equal(wantX.Exts[i].Result) ||
								!reflect.DeepEqual(x.Exts[i].Result.Sim, wantX.Exts[i].Result.Sim) {
								t.Fatalf("round %d: extension %d differs from sequential", round, i)
							}
						}
						for i, q := range queries {
							res, _, _, err := eng.Answer(q, x, gv.UseAll)
							if err != nil {
								t.Fatal(err)
							}
							if !res.Equal(wants[i]) || !reflect.DeepEqual(res.Sim, wants[i].Sim) {
								t.Fatalf("round %d query %d: pooled answer differs from sequential", round, i)
							}
						}
					}
				}
			})
		}
	}

	// Dual pipeline through the same engine pools.
	wantDX := gv.MaterializeDual(g, vs)
	eng := gv.NewEngine(gv.WithParallelism(4))
	for round := 0; round < 2; round++ {
		x, err := eng.MaterializeDual(g, vs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x.Exts {
			if !x.Exts[i].Result.Equal(wantDX.Exts[i].Result) ||
				!reflect.DeepEqual(x.Exts[i].Result.Sim, wantDX.Exts[i].Result.Sim) {
				t.Fatalf("dual round %d: extension %d differs", round, i)
			}
		}
	}
}
