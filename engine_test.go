package graphviews_test

// Tests for the concurrent Engine: parallel materialization and
// answering must produce results identical to the sequential entry
// points on generator workloads, cancellation must be honored, and the
// whole path must be race-clean (run with -race).

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	gv "graphviews"
)

// engineWorkloads returns the generator workloads the equality tests run
// over: each is a graph plus a view set, covering plain and bounded
// views across the three dataset schemas.
func engineWorkloads() map[string]struct {
	g  *gv.Graph
	vs *gv.ViewSet
} {
	yt := gv.GenerateYouTubeLike(4_000, 11_000, 11)
	return map[string]struct {
		g  *gv.Graph
		vs *gv.ViewSet
	}{
		"youtube":         {yt, gv.YouTubeViews()},
		"youtube-bounded": {yt, gv.BoundedViews(gv.YouTubeViews(), 2)},
		"amazon":          {gv.GenerateAmazonLike(1_500, 4_500, 12), gv.AmazonViews()},
		"citation":        {gv.GenerateCitationLike(3_500, 7_500, 13), gv.CitationViews()},
	}
}

func TestEngineMaterializeMatchesSequential(t *testing.T) {
	for name, wl := range engineWorkloads() {
		t.Run(name, func(t *testing.T) {
			seq := gv.Materialize(wl.g, wl.vs)
			eng := gv.NewEngine(gv.WithParallelism(8))
			parx, err := eng.Materialize(wl.g, wl.vs)
			if err != nil {
				t.Fatal(err)
			}
			if len(parx.Exts) != len(seq.Exts) {
				t.Fatalf("extension count: %d != %d", len(parx.Exts), len(seq.Exts))
			}
			for i := range seq.Exts {
				if !parx.Exts[i].Result.Equal(seq.Exts[i].Result) {
					t.Fatalf("view %q: parallel extension differs from sequential",
						wl.vs.Defs[i].Name)
				}
			}
			// The distance index built from identical extensions must agree.
			seqIdx := gv.BuildDistIndex(seq)
			parIdx, err := eng.BuildDistIndex(parx)
			if err != nil {
				t.Fatal(err)
			}
			if seqIdx.Len() != parIdx.Len() {
				t.Fatalf("dist index size: %d != %d", parIdx.Len(), seqIdx.Len())
			}
		})
	}
}

func TestEngineAnswerMatchesSequential(t *testing.T) {
	for name, wl := range engineWorkloads() {
		t.Run(name, func(t *testing.T) {
			x := gv.Materialize(wl.g, wl.vs)
			eng := gv.NewEngine(gv.WithParallelism(8))
			rng := rand.New(rand.NewSource(99))
			for qi := 0; qi < 5; qi++ {
				q := gv.GlueQuery(rng, wl.vs, 4, 6)
				for _, s := range []gv.Strategy{gv.UseAll, gv.UseMinimal, gv.UseMinimum} {
					seqRes, seqIdx, seqErr := gv.Answer(q, x, s)
					parRes, parIdx, _, parErr := eng.Answer(q, x, s)
					if (seqErr == nil) != (parErr == nil) {
						t.Fatalf("query %d strategy %v: err %v vs %v", qi, s, seqErr, parErr)
					}
					if seqErr != nil {
						continue
					}
					if !seqRes.Equal(parRes) {
						t.Fatalf("query %d strategy %v: parallel result differs", qi, s)
					}
					if len(seqIdx) != len(parIdx) {
						t.Fatalf("query %d strategy %v: view choice differs", qi, s)
					}
					for i := range seqIdx {
						if seqIdx[i] != parIdx[i] {
							t.Fatalf("query %d strategy %v: view choice differs", qi, s)
						}
					}
				}
			}
		})
	}
}

func TestEngineMatchJoinMatchesSequential(t *testing.T) {
	wl := engineWorkloads()["youtube-bounded"]
	x := gv.Materialize(wl.g, wl.vs)
	eng := gv.NewEngine(gv.WithParallelism(8))
	rng := rand.New(rand.NewSource(5))
	for qi := 0; qi < 5; qi++ {
		q := gv.GlueQuery(rng, wl.vs, 4, 7)
		l, ok, err := gv.Contains(q, wl.vs)
		if err != nil || !ok {
			t.Fatalf("glued query not contained: %v %v", ok, err)
		}
		seqRes, seqSt := gv.MatchJoin(q, x, l)
		parRes, parSt, err := eng.MatchJoin(q, x, l)
		if err != nil {
			t.Fatal(err)
		}
		if !seqRes.Equal(parRes) {
			t.Fatalf("query %d: parallel MatchJoin result differs", qi)
		}
		if seqSt.InitialPairs != parSt.InitialPairs || seqSt.PairKills != parSt.PairKills {
			t.Fatalf("query %d: stats differ: %+v vs %+v", qi, seqSt, parSt)
		}
	}
}

func TestEngineCancellation(t *testing.T) {
	wl := engineWorkloads()["youtube"]
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: every engine call must refuse to work
	eng := gv.NewEngine(gv.WithParallelism(4), gv.WithContext(ctx))

	if _, err := eng.Materialize(wl.g, wl.vs); !errors.Is(err, context.Canceled) {
		t.Fatalf("Materialize under cancelled ctx: err = %v", err)
	}
	x := gv.Materialize(wl.g, wl.vs)
	if _, err := eng.BuildDistIndex(x); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildDistIndex under cancelled ctx: err = %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	q := gv.GlueQuery(rng, wl.vs, 4, 6)
	if _, _, err := eng.Contains(q, wl.vs); !errors.Is(err, context.Canceled) {
		t.Fatalf("Contains under cancelled ctx: err = %v", err)
	}
	if _, _, _, err := eng.Answer(q, x, gv.UseAll); !errors.Is(err, context.Canceled) {
		t.Fatalf("Answer under cancelled ctx: err = %v", err)
	}
	if _, err := eng.Maintain(wl.g, wl.vs); !errors.Is(err, context.Canceled) {
		t.Fatalf("Maintain under cancelled ctx: err = %v", err)
	}
}

// TestEngineConcurrentAnswer hammers one Engine and one Extensions from
// many goroutines; under -race this verifies the read-only sharing of
// graphs, extensions and λ.
func TestEngineConcurrentAnswer(t *testing.T) {
	wl := engineWorkloads()["youtube"]
	x := gv.Materialize(wl.g, wl.vs)
	eng := gv.NewEngine(gv.WithParallelism(4))

	rng := rand.New(rand.NewSource(17))
	queries := make([]*gv.Pattern, 6)
	for i := range queries {
		queries[i] = gv.GlueQuery(rng, wl.vs, 4, 6)
	}
	want := make([]*gv.Result, len(queries))
	for i, q := range queries {
		want[i], _, _ = gv.Answer(q, x, gv.UseAll)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range queries {
				res, _, _, err := eng.Answer(q, x, gv.UseAll)
				if err != nil {
					t.Errorf("concurrent Answer: %v", err)
					return
				}
				if !res.Equal(want[i]) {
					t.Errorf("concurrent Answer: query %d diverged", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestMaintainedParallelMatchesFresh applies a mixed update stream to
// engine-maintained extensions and checks them against a from-scratch
// materialization.
func TestMaintainedParallelMatchesFresh(t *testing.T) {
	g := gv.GenerateYouTubeLike(1_200, 3_400, 21)
	vs := gv.YouTubeViews()
	eng := gv.NewEngine(gv.WithParallelism(4))
	m, err := eng.Maintain(g, vs)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(22))
	n := g.NumNodes()
	for i := 0; i < 40; i++ {
		u := gv.NodeID(rng.Intn(n))
		v := gv.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		if rng.Intn(3) == 0 {
			m.DeleteEdge(u, v)
		} else {
			m.InsertEdge(u, v)
		}
	}
	fresh := gv.Materialize(m.G, vs)
	for i := range fresh.Exts {
		if !m.X.Exts[i].Result.Equal(fresh.Exts[i].Result) {
			t.Fatalf("view %q: maintained extension diverged from fresh materialization",
				vs.Defs[i].Name)
		}
	}
}

// TestEngineMatchJoinSCCDeterminism is the acceptance harness of the
// SCC-parallel fixpoint: on cyclic (multi-SCC necklace), DAG (glued
// YouTube) and bounded workloads, Engine.MatchJoin must return results
// and stats byte-identical to the sequential gv.MatchJoin at workers
// 1, 2, 4 and 8. Run with -race.
func TestEngineMatchJoinSCCDeterminism(t *testing.T) {
	type workload struct {
		g  *gv.Graph
		q  *gv.Pattern
		vs *gv.ViewSet
	}
	rng := rand.New(rand.NewSource(311))
	workloads := map[string]workload{}

	// Cyclic: 4-bead necklace, plain bridges.
	q1, vs1 := gv.NecklaceQuery(rng, 4, 1)
	workloads["cyclic"] = workload{gv.NecklaceGraph(rng, q1, 300, 1800), q1, vs1}

	// Bounded: 3-bead necklace with bound-2 bridges.
	q2, vs2 := gv.NecklaceQuery(rng, 3, 2)
	workloads["bounded"] = workload{gv.NecklaceGraph(rng, q2, 200, 1200), q2, vs2}

	// DAG: glued queries over the YouTube views (reject cyclic glue-ups).
	ytVS := gv.YouTubeViews()
	var dagQ *gv.Pattern
	for i := 0; i < 50; i++ {
		c := gv.GlueQuery(rng, ytVS, 4, 6)
		if c.IsDAG() {
			dagQ = c
			break
		}
	}
	if dagQ == nil {
		t.Fatal("no DAG glue query found")
	}
	workloads["dag"] = workload{gv.GenerateYouTubeLike(3_000, 8_500, 17), dagQ, ytVS}

	for name, wl := range workloads {
		t.Run(name, func(t *testing.T) {
			l, ok, err := gv.Contains(wl.q, wl.vs)
			if err != nil || !ok {
				t.Fatalf("workload query not contained: %v %v", ok, err)
			}
			x := gv.Materialize(wl.g, wl.vs)
			seqRes, seqSt := gv.MatchJoin(wl.q, x, l)
			for _, w := range []int{1, 2, 4, 8} {
				eng := gv.NewEngine(gv.WithParallelism(w))
				res, st, err := eng.MatchJoin(wl.q, x, l)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if !res.Equal(seqRes) {
					t.Fatalf("workers=%d: edge match sets differ from sequential MatchJoin", w)
				}
				if len(res.Sim) != len(seqRes.Sim) {
					t.Fatalf("workers=%d: Sim arity differs", w)
				}
				for u := range res.Sim {
					if len(res.Sim[u]) != len(seqRes.Sim[u]) {
						t.Fatalf("workers=%d: Sim[%d] differs", w, u)
					}
					for j := range res.Sim[u] {
						if res.Sim[u][j] != seqRes.Sim[u][j] {
							t.Fatalf("workers=%d: Sim[%d] differs", w, u)
						}
					}
				}
				if st != seqSt {
					t.Fatalf("workers=%d: stats %+v != sequential %+v", w, st, seqSt)
				}
			}
		})
	}
}

func TestEngineDefaults(t *testing.T) {
	if got := gv.NewEngine().Parallelism(); got < 1 {
		t.Fatalf("default parallelism = %d, want >= 1", got)
	}
	if got := gv.NewEngine(gv.WithParallelism(-3)).Parallelism(); got < 1 {
		t.Fatalf("WithParallelism(-3) resolved to %d, want GOMAXPROCS >= 1", got)
	}
	if got := gv.NewEngine(gv.WithParallelism(6)).Parallelism(); got != 6 {
		t.Fatalf("WithParallelism(6) = %d", got)
	}
}
