package graphviews_test

// Allocation regression bounds for the steady-state (pooled) answer
// pipeline. The PR 4 scratch arenas make repeated Engine calls on a
// warmed pool allocate only the Result and a bounded amount of phase
// bookkeeping — the pre-PR engines allocated O(|V|·|Q|) working state
// (membership rows, support maps, CSR indexes) per call, thousands of
// objects per query. These tests pin the steady state so a regression
// that reintroduces per-call working-state allocation fails loudly.
//
// The bounds are deliberately loose (≥2× headroom over measured values,
// which are documented in README.md §Performance alongside the
// `-benchmem` numbers in BENCH_PR4.json) — they exist to catch
// order-of-magnitude regressions, not to freeze exact counts. Skipped
// under -race: the race runtime changes allocation behavior.

import (
	"math/rand"
	"testing"

	gv "graphviews"
)

// allocWorkload builds a mid-sized frozen instance with a warmed engine:
// pool steady state is reached by running each phase a few times first.
func allocWorkload(t *testing.T) (*gv.Engine, *gv.Frozen, *gv.ViewSet, *gv.Pattern, *gv.Extensions) {
	t.Helper()
	g := gv.GenerateYouTubeLike(8_000, 22_000, 3)
	vs := gv.YouTubeViews()
	fz := gv.Freeze(g)
	rng := rand.New(rand.NewSource(11))
	q := gv.GlueQuery(rng, vs, 5, 7)
	eng := gv.NewEngine(gv.WithParallelism(1))
	var x *gv.Extensions
	for i := 0; i < 3; i++ {
		var err error
		x, err = eng.Materialize(fz, vs)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := eng.Answer(q, x, gv.UseAll); err != nil {
			t.Fatal(err)
		}
	}
	return eng, fz, vs, q, x
}

// TestSteadyStateAnswerAllocs bounds allocations of Engine.Answer on a
// warmed scratch pool (measured ~294 allocs/op: containment working
// state plus the Result; the pre-PR engine sat around 4.4k for MatchJoin
// alone).
func TestSteadyStateAnswerAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not comparable under -race")
	}
	eng, _, _, q, x := allocWorkload(t)
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, _, err := eng.Answer(q, x, gv.UseAll); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("Engine.Answer steady state: %.1f allocs/op", allocs)
	const bound = 600
	if allocs > bound {
		t.Fatalf("Engine.Answer steady state allocates %.1f objects/op, bound %d", allocs, bound)
	}
}

// TestSteadyStateMaterializeAllocs bounds allocations of
// Engine.Materialize on a warmed pool (the Result extensions dominate;
// fixpoint working state comes from the arenas).
func TestSteadyStateMaterializeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not comparable under -race")
	}
	eng, fz, vs, _, _ := allocWorkload(t)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.Materialize(fz, vs); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("Engine.Materialize steady state: %.1f allocs/op", allocs)
	const bound = 800
	if allocs > bound {
		t.Fatalf("Engine.Materialize steady state allocates %.1f objects/op, bound %d", allocs, bound)
	}
}

// TestSteadyStateMatchJoinAllocs bounds the MatchJoin phase alone — the
// paper's core operator and the tightest loop of the serving story.
func TestSteadyStateMatchJoinAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not comparable under -race")
	}
	eng, _, vs, q, x := allocWorkload(t)
	l, ok, err := eng.Contains(q, vs)
	if err != nil || !ok {
		t.Fatalf("workload query not contained: %v %v", ok, err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := eng.MatchJoin(q, x, l); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := eng.MatchJoin(q, x, l); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("Engine.MatchJoin steady state: %.1f allocs/op", allocs)
	const bound = 150
	if allocs > bound {
		t.Fatalf("Engine.MatchJoin steady state allocates %.1f objects/op, bound %d", allocs, bound)
	}
}
